"""Width-bounded model counting by DP over a tree decomposition.

The ``method='dpdb'`` backend: instead of *searching* for models the way
the trail core does, run a **join/project/sum dynamic program** over the
rooted tree decomposition of :mod:`repro.compile.decompose` — the
dp_on_dbs idea (Fichte, Hecher, Thier, Woltran) with vectorized in-memory
tables in place of SQL relations.  Cost is ``O(nodes * 2^(width+1))``
table cells: linear in formula size once the width is bounded, and
entirely immune to bad branching orders — the exact opposite cost profile
of DPLL-style search, which is why the planner keeps both.

**The DP.**  Processing elimination positions in ascending order (parents
always come later) each node holds a dense table of ``2^|bag|`` cells,
one per assignment of its bag:

* *join* — multiply in each child's message, aligned on the child's
  separator (a subset of this bag by construction);
* *introduce* — the table starts as ones over the whole bag, and the
  clauses attached to this bag zero out the violating cells;
* *project* (forget) — sum out the node's eliminated variable, weighting
  the two polarities by the variable's ``(w⁺, w⁻)`` pair, and pass the
  result up as this node's message.

Every root's message is a scalar; the model count is the product of the
root scalars times a free factor ``w⁺+w⁻`` per variable in no clause —
the same per-variable weight-table convention as
:mod:`repro.compile.circuit` (``WeightMap``: variable → ``(w⁺, w⁻)``,
unweighted = ``(1, 1)``).

**Projected counting.**  For ``#Comp``-style questions the decomposition
eliminates every auxiliary variable before any projected one, so the
forest splits into a pure-auxiliary zone whose subtrees sit below a
pure-projected zone.  Auxiliary-zone messages are plain extension counts;
the moment a message crosses into the projected zone (or leaves a
pure-auxiliary component at its root) it is clamped to an existence
indicator ``[count > 0]``.  That is sound because extension counts are
nonnegative and multiply across disjoint subtrees:
``[a*b > 0] = [a > 0] * [b > 0]``.  Above the boundary the DP sums
projected variables normally, so the root scalars count *distinct
projected assignments* — the projected model count, bit-identical to the
trail core's.  (Projected counting is unweighted; mixing ``weights`` and
``projection`` is rejected.)

**Table dtypes.**  With numpy present, tables are int64 columns when a
magnitude sweep proves no intermediate can overflow — first a cheap
product bound, then (mirroring PR 7's ``evaluate_many`` gating) a float64
*guard pass* that runs the very same DP on clamped magnitudes and checks
the running maximum against ``2^61`` — and exact Python-int/Fraction
object columns otherwise.  Without numpy a scalar fallback runs the same
recurrences over plain lists.

The planner talks to this module through :func:`dpdb_probe` — a memoized
width probe that compiles the encoding once, reads the two-phase greedy
elimination width off the (cached) primal masks, and hands the order to
the runner so probing and solving share one elimination — and falls back
to the trail core when the width exceeds :data:`DPDB_HARD_WIDTH_CAP` or
the probe blows its budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterable, Iterator, Mapping

from repro.compile.decompose import (
    Decomposition,
    decompose,
    decompose_from_elimination,
)
from repro.compile.encode import (
    compile_completion_cnf,
    compile_valuation_cnf,
)
from repro.compile.lineage import lineage_supports
from repro.compile.ordering import primal_masks, refined_elimination_masks
from repro.complexity.cnf import CNF
from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.obs import (
    event as _obs_event,
    incr as _incr,
    observe as _observe,
    span as _span,
)

try:  # numpy is optional at runtime; the scalar fallback keeps results exact
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None  # type: ignore[assignment]

#: Planner preference threshold: at or below this width the DP is treated
#: as the cheap method for a hard cell (tables of at most
#: ``2^(limit+1)`` cells per node).
DPDB_WIDTH_LIMIT = 12

#: Hard safety cap for *forced* ``method='dpdb'``: above this width a
#: single table would exceed half a million cells, so the runner
#: delegates to the trail core instead of honoring the request literally.
DPDB_HARD_WIDTH_CAP = 18

#: Probe budget: instances whose encoding would exceed these sizes are
#: not probed at all (the probe reports itself over budget and the
#: planner prefers the trail core).
DPDB_PROBE_VARIABLE_LIMIT = 4_000
DPDB_PROBE_CLAUSE_LIMIT = 50_000

#: int64 is safe while the guard pass's running maximum stays below this
#: (one bit of slack under ``2^62`` absorbs float64 rounding).
_INT64_GUARD = float(1 << 61)
_INT64_SAFE = 1 << 62


# ---------------------------------------------------------------------------
# the solver
# ---------------------------------------------------------------------------


def count_models_dpdb(
    cnf: CNF,
    projection: Iterable[int] | None = None,
    weights: Mapping[int, tuple] | None = None,
    decomposition: Decomposition | None = None,
    stats: dict[str, Any] | None = None,
) -> Any:
    """Model count of ``cnf`` by tree-decomposition DP.

    Semantics match :func:`repro.compile.sharpsat.count_models` exactly:
    counts over all ``cnf.num_variables`` variables (a variable in no
    clause contributes a free factor), and ``projection`` switches to the
    distinct-restrictions projected count where only free *projected*
    variables contribute factors.  ``weights`` maps ``variable ->
    (w_pos, w_neg)`` in the :mod:`repro.compile.circuit` convention and
    is exact for int/Fraction weights; it cannot be combined with
    ``projection``.  ``stats``, when given a dict, is filled with the
    width/table numbers the obs spans record.
    """
    if weights and projection is not None:
        raise ValueError("projected counting is unweighted; pass one of the two")

    if any(not clause for clause in cnf.clauses):
        if stats is not None:
            stats["path"] = "empty-clause"
        return 0

    projection_mask = 0
    projected = projection is not None
    if projected:
        assert projection is not None
        for variable in projection:
            if variable < 1 or variable > cnf.num_variables:
                raise ValueError(
                    "projection variables must be in 1..num_variables"
                )
            projection_mask |= 1 << variable

    if decomposition is None:
        decomposition = decompose(cnf, projection=projection)
    elif decomposition.projection_mask != projection_mask:
        raise ValueError(
            "decomposition was built for a different projection; "
            "rebuild it with decompose(cnf, projection=...)"
        )

    positive, negative, all_int = _weight_columns(cnf.num_variables, weights)

    _incr("dpdb.runs")
    _observe("dpdb.width", decomposition.width)
    with _span(
        "dpdb.tables",
        nodes=len(decomposition),
        width=decomposition.width,
        max_bag=decomposition.max_bag,
        projected=projected,
    ):
        path, factors, rows = _solve(
            decomposition, positive, negative, all_int, projected
        )
    _observe("dpdb.rows", rows)

    result: Any = 1
    for factor in factors:
        result = result * factor
    if projected:
        result = result * (
            1 << (projection_mask & _free_mask(decomposition)).bit_count()
        )
    else:
        for variable in decomposition.free_variables:
            result = result * (positive[variable] + negative[variable])

    if stats is not None:
        stats.update(decomposition.stats())
        stats["path"] = path
        stats["rows"] = rows
    return result


def _free_mask(decomposition: Decomposition) -> int:
    mask = 0
    for variable in decomposition.free_variables:
        mask |= 1 << variable
    return mask


def _weight_columns(
    num_variables: int, weights: Mapping[int, tuple] | None
) -> tuple[list[Any], list[Any], bool]:
    """Per-variable ``(w⁺, w⁻)`` columns, defaulting to ``(1, 1)``."""
    positive: list[Any] = [1] * (num_variables + 1)
    negative: list[Any] = [1] * (num_variables + 1)
    all_int = True
    for variable, pair in (weights or {}).items():
        if variable < 1 or variable > num_variables:
            raise ValueError(
                "weight for variable %r outside 1..%d"
                % (variable, num_variables)
            )
        w_pos, w_neg = pair[0], pair[1]
        positive[variable] = w_pos
        negative[variable] = w_neg
        if all_int and not (
            isinstance(w_pos, int) and isinstance(w_neg, int)
        ):
            all_int = False
    return positive, negative, all_int


def _solve(
    decomposition: Decomposition,
    positive: list[Any],
    negative: list[Any],
    all_int: bool,
    projected: bool,
) -> tuple[str, list[Any], int]:
    """Pick the table dtype, run the pass(es), return root factors."""
    if _np is None:
        factors, rows = _run_python(decomposition, positive, negative, projected)
        return "python", factors, rows
    if not all_int:
        factors, rows, _ = _run_numpy(
            decomposition, positive, negative, projected, dtype=object
        )
        return "object", factors, rows
    if _product_bound(decomposition, positive, negative) < _INT64_SAFE:
        factors, rows, _ = _run_numpy(
            decomposition, positive, negative, projected, dtype=_np.int64
        )
        return "int64", [int(factor) for factor in factors], rows
    # The cheap bound failed: run the float64 guard pass — the same DP on
    # clamped magnitudes — and trust int64 only if its running maximum
    # stays clear of overflow (NaN/inf compare False and land on object).
    magnitude_pos = [value if value >= 0 else -value for value in positive]
    magnitude_neg = [value if value >= 0 else -value for value in negative]
    _, _, seen = _run_numpy(
        decomposition,
        magnitude_pos,
        magnitude_neg,
        projected,
        dtype=_np.float64,
        track_max=True,
    )
    if seen < _INT64_GUARD:
        factors, rows, _ = _run_numpy(
            decomposition, positive, negative, projected, dtype=_np.int64
        )
        return "int64+guard", [int(factor) for factor in factors], rows
    factors, rows, _ = _run_numpy(
        decomposition, positive, negative, projected, dtype=object
    )
    return "object+guard", factors, rows


def _product_bound(
    decomposition: Decomposition, positive: list[Any], negative: list[Any]
) -> int:
    """Cheap overflow bound: every table cell sums products of one
    ``(w⁺, w⁻)`` factor per already-eliminated variable, so its magnitude
    is at most the product of per-variable ``|w⁺|+|w⁻|`` (clamped to 1)
    over the clause-occurring variables."""
    bound = 1
    for variable in decomposition.order:
        w_pos, w_neg = positive[variable], negative[variable]
        factor = (w_pos if w_pos >= 0 else -w_pos) + (
            w_neg if w_neg >= 0 else -w_neg
        )
        if factor > 1:
            bound *= factor
        if bound >= _INT64_SAFE:
            return _INT64_SAFE
    return bound


def _clamp_message(
    decomposition: Decomposition, node: int, projected: bool
) -> bool:
    """Does ``node``'s message cross the auxiliary/projected boundary?

    In projected mode an auxiliary node's message is an extension count;
    it becomes an existence indicator the moment it leaves the auxiliary
    zone — into a projected-variable parent, or out of the top of a
    pure-auxiliary component.
    """
    if not projected:
        return False
    if (decomposition.projection_mask >> decomposition.order[node]) & 1:
        return False
    parent = decomposition.parent[node]
    if parent < 0:
        return True
    return bool(
        (decomposition.projection_mask >> decomposition.order[parent]) & 1
    )


def _run_numpy(
    decomposition: Decomposition,
    positive: list[Any],
    negative: list[Any],
    projected: bool,
    dtype: Any,
    track_max: bool = False,
) -> tuple[list[Any], int, float]:
    """One DP pass with dense numpy tables of the given dtype.

    Every dtype runs the identical operation sequence, so the float64
    guard pass majorizes each intermediate of the int64 pass cell for
    cell.  Returns ``(root_factors, cells_processed, running_max)``.
    """
    np = _np
    assert np is not None
    messages: list[Any] = [None] * len(decomposition)
    factors: list[Any] = []
    rows = 0
    seen = 0.0

    for node in range(len(decomposition)):
        bag_vars = list(_bits(decomposition.bags[node]))
        width = len(bag_vars)
        at = {variable: bit for bit, variable in enumerate(bag_vars)}
        size = 1 << width
        table = np.ones(size, dtype=dtype)
        index = None

        for child in decomposition.children[node]:
            message = messages[child]
            messages[child] = None
            if index is None:
                index = np.arange(size, dtype=np.int64)
            selector = np.zeros(size, dtype=np.int64)
            for bit, variable in enumerate(
                _bits(decomposition.separator(child))
            ):
                selector |= ((index >> at[variable]) & 1) << bit
            table = table * message[selector]
            rows += size
            if track_max:
                seen = max(seen, float(table.max()))

        for clause in decomposition.node_clauses[node]:
            pos_mask = 0
            neg_mask = 0
            for literal in clause:
                if literal > 0:
                    pos_mask |= 1 << at[literal]
                else:
                    neg_mask |= 1 << at[-literal]
            if index is None:
                index = np.arange(size, dtype=np.int64)
            violated = ((index & pos_mask) == 0) & (
                (index & neg_mask) == neg_mask
            )
            table = np.where(violated, _zero_of(dtype), table)
            rows += size

        eliminated = decomposition.order[node]
        bit = at[eliminated]
        split = table.reshape(1 << (width - 1 - bit), 2, 1 << bit)
        message = (
            negative[eliminated] * split[:, 0, :]
            + positive[eliminated] * split[:, 1, :]
        ).reshape(-1)
        if track_max:
            seen = max(seen, float(message.max()))
        if _clamp_message(decomposition, node, projected):
            message = _indicator(message, dtype)
        if decomposition.parent[node] < 0:
            factors.append(message[0])
        else:
            messages[node] = message
    return factors, rows, seen


def _zero_of(dtype: Any) -> Any:
    return 0 if dtype is object else dtype(0)


def _indicator(message: Any, dtype: Any) -> Any:
    """``[x > 0]`` per cell, staying in the table dtype (Python ints for
    object tables, so no int64 can sneak into an exact pass)."""
    np = _np
    assert np is not None
    if dtype is object:
        clamped = np.zeros(message.shape, dtype=object)
        clamped[message > 0] = 1
        return clamped
    return (message > 0).astype(dtype)


def _run_python(
    decomposition: Decomposition,
    positive: list[Any],
    negative: list[Any],
    projected: bool,
) -> tuple[list[Any], int]:
    """The same DP over plain Python lists (no numpy; always exact)."""
    messages: list[Any] = [None] * len(decomposition)
    factors: list[Any] = []
    rows = 0

    for node in range(len(decomposition)):
        bag_vars = list(_bits(decomposition.bags[node]))
        width = len(bag_vars)
        at = {variable: bit for bit, variable in enumerate(bag_vars)}
        size = 1 << width
        table: list[Any] = [1] * size

        for child in decomposition.children[node]:
            message = messages[child]
            messages[child] = None
            sep_bits = [
                at[variable]
                for variable in _bits(decomposition.separator(child))
            ]
            for cell in range(size):
                selector = 0
                for bit, source in enumerate(sep_bits):
                    selector |= ((cell >> source) & 1) << bit
                table[cell] = table[cell] * message[selector]
            rows += size

        for clause in decomposition.node_clauses[node]:
            pos_mask = 0
            neg_mask = 0
            for literal in clause:
                if literal > 0:
                    pos_mask |= 1 << at[literal]
                else:
                    neg_mask |= 1 << at[-literal]
            for cell in range(size):
                if (cell & pos_mask) == 0 and (cell & neg_mask) == neg_mask:
                    table[cell] = 0
            rows += size

        eliminated = decomposition.order[node]
        bit = at[eliminated]
        w_pos, w_neg = positive[eliminated], negative[eliminated]
        low = (1 << bit) - 1
        message = [
            w_neg * table[(cell & ~low) << 1 | (cell & low)]
            + w_pos * table[((cell & ~low) << 1) | (1 << bit) | (cell & low)]
            for cell in range(size >> 1)
        ]
        if _clamp_message(decomposition, node, projected):
            message = [1 if value > 0 else 0 for value in message]
        if decomposition.parent[node] < 0:
            factors.append(message[0])
        else:
            messages[node] = message
    return factors, rows


def _bits(mask: int) -> Iterator[int]:
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# ---------------------------------------------------------------------------
# the width probe (what the planner consults)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DpdbProbe:
    """One memoized width probe: verdict, width, and the elimination the
    runner can reuse (``order``/``bags`` are probe-owned; treat as
    read-only)."""

    ok: bool
    reason: str
    width: int | None
    variables: int
    clauses: int
    encoding: Any = None
    order: Any = None
    bags: Any = None
    projection_mask: int = 0

    def detail(self) -> dict[str, Any]:
        """The cost detail surfaced in ``Plan`` rows and ``plan --json``."""
        payload: dict[str, Any] = {
            "width_limit": DPDB_WIDTH_LIMIT,
            "variables": self.variables,
            "clauses": self.clauses,
        }
        if self.width is not None:
            payload["width"] = self.width
        return payload


def dpdb_probe(
    kind: str, db: IncompleteDatabase, query: BooleanQuery | None
) -> DpdbProbe:
    """Cheap memoized width probe for ``(kind, D, q)``.

    Compiles the matching encoding once, reads the two-phase greedy
    elimination width off the cached primal masks, and reports budget
    overruns instead of paying for huge instances.  The runner reuses the
    probe's encoding and elimination, so planning never duplicates work
    the solve would redo.
    """
    if kind == "val":
        return _probe_val(db, query)
    if kind == "comp":
        return _probe_comp(db, query)
    raise ValueError("dpdb probes cover 'val' and 'comp'; got %r" % (kind,))


@lru_cache(maxsize=64)
def _probe_val(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> DpdbProbe:
    if not lineage_supports(query):
        return DpdbProbe(
            ok=False,
            reason="lineage compilation handles (U)CQs only",
            width=None,
            variables=0,
            clauses=0,
        )
    budget = _budget_reason(db)
    if budget is not None:
        return DpdbProbe(
            ok=False, reason=budget, width=None, variables=0, clauses=0
        )
    encoding = compile_valuation_cnf(db, query)
    return _probe_cnf(encoding, encoding.cnf, projection_mask=0)


@lru_cache(maxsize=64)
def _probe_comp(
    db: IncompleteDatabase, query: BooleanQuery | None
) -> DpdbProbe:
    if query is not None and not lineage_supports(query):
        return DpdbProbe(
            ok=False,
            reason="lineage compilation handles (U)CQs only",
            width=None,
            variables=0,
            clauses=0,
        )
    budget = _budget_reason(db)
    if budget is not None:
        return DpdbProbe(
            ok=False, reason=budget, width=None, variables=0, clauses=0
        )
    encoding = compile_completion_cnf(db, query)
    projection_mask = 0
    for variable in encoding.projection:
        projection_mask |= 1 << variable
    return _probe_cnf(encoding, encoding.cnf, projection_mask=projection_mask)


def _budget_reason(db: IncompleteDatabase) -> str | None:
    choice_variables = sum(len(db.domain_of(null)) for null in db.nulls)
    if choice_variables > DPDB_PROBE_VARIABLE_LIMIT:
        return (
            "width probe over budget (%d choice variables > %d)"
            % (choice_variables, DPDB_PROBE_VARIABLE_LIMIT)
        )
    return None


def _probe_cnf(encoding: Any, cnf: CNF, projection_mask: int) -> DpdbProbe:
    if cnf.num_variables > DPDB_PROBE_VARIABLE_LIMIT:
        return DpdbProbe(
            ok=False,
            reason="width probe over budget (%d encoding variables > %d)"
            % (cnf.num_variables, DPDB_PROBE_VARIABLE_LIMIT),
            width=None,
            variables=cnf.num_variables,
            clauses=len(cnf),
        )
    if len(cnf) > DPDB_PROBE_CLAUSE_LIMIT:
        return DpdbProbe(
            ok=False,
            reason="width probe over budget (%d clauses > %d)"
            % (len(cnf), DPDB_PROBE_CLAUSE_LIMIT),
            width=None,
            variables=cnf.num_variables,
            clauses=len(cnf),
        )
    masks = primal_masks(cnf)
    delay = 0
    if projection_mask:
        occurring = 0
        for vertex in masks:
            occurring |= 1 << vertex
        delay = projection_mask & occurring
    with _span(
        "dpdb.probe", variables=cnf.num_variables, clauses=len(cnf)
    ):
        order, width, bags = refined_elimination_masks(masks, delay=delay)
    return DpdbProbe(
        ok=True,
        reason="elimination width %d" % width,
        width=width,
        variables=cnf.num_variables,
        clauses=len(cnf),
        encoding=encoding,
        order=order,
        bags=bags,
        projection_mask=projection_mask,
    )


def probe_cache_clear() -> None:
    """Drop the memoized probes (tests and long-running services)."""
    _probe_val.cache_clear()
    _probe_comp.cache_clear()


# ---------------------------------------------------------------------------
# the counting front doors the planner registers
# ---------------------------------------------------------------------------


def count_valuations_dpdb(db: IncompleteDatabase, query: BooleanQuery) -> int:
    """``#Val(q)(D)`` by tree-decomposition DP over the complement
    encoding, bit-identical to ``method='lineage'``; delegates to the
    trail core when the width makes tables unaffordable."""
    probe = dpdb_probe("val", db, query)
    if not probe.ok or probe.width is None or probe.width > DPDB_HARD_WIDTH_CAP:
        return _fallback("val", probe, db, query)
    encoding = probe.encoding
    if encoding.total_valuations == 0:
        return 0
    decomposition = decompose_from_elimination(
        encoding.cnf, probe.order, probe.width, probe.bags
    )
    falsifying = count_models_dpdb(encoding.cnf, decomposition=decomposition)
    return int(encoding.count_from_models(falsifying))


def count_completions_dpdb(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> int:
    """``#Comp(q)(D)`` by *projected* tree-decomposition DP over the
    canonical-fact encoding, bit-identical to ``method='lineage'``;
    delegates to the trail core when the (projection-constrained) width
    makes tables unaffordable."""
    probe = dpdb_probe("comp", db, query)
    if not probe.ok or probe.width is None or probe.width > DPDB_HARD_WIDTH_CAP:
        return _fallback("comp", probe, db, query)
    encoding = probe.encoding
    decomposition = decompose_from_elimination(
        encoding.cnf,
        probe.order,
        probe.width,
        probe.bags,
        projection_mask=probe.projection_mask,
    )
    return int(
        count_models_dpdb(
            encoding.cnf,
            projection=encoding.projection,
            decomposition=decomposition,
        )
    )


def count_valuations_weighted_dpdb(
    db: IncompleteDatabase,
    query: BooleanQuery,
    weights: Mapping[Any, Any] | None = None,
) -> Any:
    """Weighted ``#Val`` through the DP: the weighted total factorizes per
    null, the falsifying mass is one weighted DP pass over the complement
    encoding with the circuit's ``(w⁺, w⁻)`` weight-table convention.
    Exact for int/Fraction weights; agrees with
    :meth:`ValuationCircuit.weighted_count` answer for answer."""
    from repro.db.valuation import resolve_null_weights

    probe = dpdb_probe("val", db, query)
    if not probe.ok or probe.width is None or probe.width > DPDB_HARD_WIDTH_CAP:
        from repro.compile.backend import ValuationCircuit

        _record_fallback("val-weighted", probe)
        return ValuationCircuit(db, query).weighted_count(weights)
    encoding = probe.encoding
    resolved = resolve_null_weights(db, weights)
    if encoding.total_valuations == 0:
        return 0
    total: Any = 1
    for null in db.nulls:
        total = total * sum(resolved[null].values())
    variable_weights = {
        variable: (resolved[null].get(value, 0), 1)
        for (null, value), variable in encoding.choices.items()
    }
    decomposition = decompose_from_elimination(
        encoding.cnf, probe.order, probe.width, probe.bags
    )
    falsifying = count_models_dpdb(
        encoding.cnf, weights=variable_weights, decomposition=decomposition
    )
    return total - falsifying


def _fallback(
    kind: str,
    probe: DpdbProbe,
    db: IncompleteDatabase,
    query: BooleanQuery | None,
) -> int:
    from repro.compile.backend import (
        count_completions_lineage,
        count_valuations_lineage,
    )

    _record_fallback(kind, probe)
    if kind == "val":
        assert query is not None
        return count_valuations_lineage(db, query)
    return count_completions_lineage(db, query)


def _record_fallback(kind: str, probe: DpdbProbe) -> None:
    _incr("dpdb.fallback")
    _obs_event(
        "dpdb.fallback",
        problem=kind,
        width=probe.width,
        cap=DPDB_HARD_WIDTH_CAP,
        reason=(
            probe.reason
            if not probe.ok
            else "width %d exceeds hard cap %d"
            % (probe.width, DPDB_HARD_WIDTH_CAP)
        ),
    )


__all__ = [
    "DPDB_HARD_WIDTH_CAP",
    "DPDB_PROBE_CLAUSE_LIMIT",
    "DPDB_PROBE_VARIABLE_LIMIT",
    "DPDB_WIDTH_LIMIT",
    "DpdbProbe",
    "count_completions_dpdb",
    "count_models_dpdb",
    "count_valuations_dpdb",
    "count_valuations_weighted_dpdb",
    "dpdb_probe",
    "probe_cache_clear",
]
