"""CNF encodings of ``#Val`` and ``#Comp`` as model-counting problems.

Two encodings, both over the shared :class:`~repro.complexity.cnf.CNF`
representation:

**Valuations (complement encoding).**  The lineage of a (U)CQ is a
monotone DNF, so its *negation* is directly a CNF: one all-negative clause
per match.  Together with the exactly-one domain blocks, models are in
bijection with the valuations *falsifying* the query, and

    ``#Val(q)(D)  =  (total valuations)  -  (model count)``.

No auxiliary variables, no Tseitin transform — the formula mentions choice
variables only.

**Satisfying valuations (witness encoding).**  The positive counterpart
of the complement encoding: the lineage DNF is Tseitin-style folded into
CNF with one witness (commander) variable per multi-condition match, and
the count of interest is the **projected** model count onto the choice
variables — a choice assignment extends to a model exactly when some
match is fully chosen, so

    ``#Val(q)(D)  =  (projected model count)``.

The final "some witness holds" disjunction is asserted through a balanced
OR-tree of bounded-fan-in clauses rather than one wide clause: a clause
is a clique of the primal graph, and a single m-literal witness clause
would hand the treewidth heuristic an m-clique, destroying exactly the
component decomposition that makes counting tractable.  The tree keeps
every clause short, so the formula's width tracks the lineage's — at the
price of a logarithmic sprinkle of don't-care auxiliaries, which
projected counting ignores by construction.

The complement encoding is what both the ``lineage`` backend and the
d-DNNF circuit pipeline compile: no auxiliary variables, and the
formula's treewidth is the lineage's own, which is what keeps the search
(and hence the recorded circuit) tractable.  The witness encoding is kept
as an *independent cross-validation oracle* on small instances only — its
global "some witness holds" disjunction couples the whole formula and
defeats component decomposition at scale (see the OR-tree note below),
and every circuit question is answerable from the complement side
(``total - falsifying``, factorized pinned totals, chain-rule sampling).

**Completions (canonical-fact encoding).**  A completion is identified
with the set of ground facts it contains, one fact variable ``y[g]`` per
potential fact.  Image-definition clauses force ``y = ν(D)`` in every
model: *forward* clauses (choices of a producer imply its fact) give
``ν(D) ⊆ y``, *backward* clauses (a fact implies some producer's choices,
via one commander variable per multi-condition producer) give
``y ⊆ ν(D)``.  The query adds its completion-side lineage.  Because the
same completion arises from many valuations, the count of interest is the
**projected** model count onto the fact variables — distinct fact-variable
assignments extendable to a model — which is exactly ``#Comp``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.complexity.cnf import CNF
from repro.compile.lineage import (
    enumerate_completion_matches,
    enumerate_valuation_matches,
)
from repro.compile.variables import ChoiceVariables, FactVariables
from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import count_total_valuations


@dataclass
class ValuationEncoding:
    """``#Val`` as a complement model count: ``total - count(cnf)``."""

    cnf: CNF
    choices: ChoiceVariables
    total_valuations: int
    num_matches: int
    trivially_true: bool

    def count_from_models(self, falsifying_models: int) -> int:
        return self.total_valuations - falsifying_models


def compile_valuation_cnf(
    db: IncompleteDatabase, query: BooleanQuery
) -> ValuationEncoding:
    """Compile ``(D, q)`` into the complement encoding of ``#Val(q)(D)``.

    Models of the returned CNF are exactly the valuations ``ν`` with
    ``ν(D) ⊭ q``.  Corner cases fall out of the clause semantics: an
    unsatisfiable query contributes no clauses (every valuation falsifies
    it) and a trivially-true one contributes the empty clause (none does).
    """
    cnf = CNF()
    choices = ChoiceVariables(cnf, db)
    matches = enumerate_valuation_matches(db, query)
    trivially_true = bool(matches) and not matches[0]
    for conditions in matches:
        cnf.add_clause(
            -choices.var(null, value) for null, value in conditions
        )
    return ValuationEncoding(
        cnf=cnf,
        choices=choices,
        total_valuations=count_total_valuations(db),
        num_matches=len(matches),
        trivially_true=trivially_true,
    )


@dataclass
class SatisfactionEncoding:
    """``#Val`` as a projected model count onto the choice variables."""

    cnf: CNF
    choices: ChoiceVariables
    projection: frozenset[int]
    total_valuations: int
    num_matches: int
    trivially_true: bool


def compile_satisfaction_cnf(
    db: IncompleteDatabase, query: BooleanQuery
) -> SatisfactionEncoding:
    """Compile ``(D, q)`` into the witness encoding of ``#Val(q)(D)``.

    The projected model count of the returned CNF onto ``projection``
    (the choice variables) is exactly the number of valuations ``ν`` with
    ``ν(D) |= q``; restricted to the choice variables, models *are* the
    satisfying valuations.  A trivially true query adds no lineage clause
    (every valuation qualifies); an unsatisfiable one adds the empty
    clause (none does).
    """
    cnf = CNF()
    choices = ChoiceVariables(cnf, db)
    matches = enumerate_valuation_matches(db, query)
    trivially_true = bool(matches) and not matches[0]
    if not trivially_true:
        witnesses = []
        for conditions in matches:
            if len(conditions) == 1:
                ((null, value),) = conditions
                witnesses.append(choices.var(null, value))
            else:
                commander = cnf.new_variable()
                for null, value in conditions:
                    cnf.add_clause((-commander, choices.var(null, value)))
                witnesses.append(commander)
        # Empty DNF compiles to the empty clause: no valuation satisfies q.
        _assert_disjunction(cnf, witnesses)
    return SatisfactionEncoding(
        cnf=cnf,
        choices=choices,
        projection=frozenset(choices.variables()),
        total_valuations=count_total_valuations(db),
        num_matches=len(matches),
        trivially_true=trivially_true,
    )


#: Widest clause :func:`_assert_disjunction` will emit.  Matches arrive
#: roughly grouped by locality in the database, so grouping neighbours
#: keeps tree parents local too and decomposition intact.
_DISJUNCTION_FANIN = 4


def _assert_disjunction(cnf: CNF, literals: list[int]) -> None:
    """Assert ``l1 ∨ ... ∨ lk`` via a balanced OR-tree of short clauses.

    Each tree parent ``p`` gets the one-sided Tseitin clause
    ``p → (child1 ∨ ... ∨ childF)`` and the root level is asserted
    directly; a projected model restricted to the original variables
    therefore exists iff the plain disjunction is satisfiable, while no
    clause exceeds ``_DISJUNCTION_FANIN + 1`` literals.
    """
    while len(literals) > _DISJUNCTION_FANIN:
        grouped = []
        for start in range(0, len(literals), _DISJUNCTION_FANIN):
            group = literals[start:start + _DISJUNCTION_FANIN]
            if len(group) == 1:
                grouped.append(group[0])
                continue
            parent = cnf.new_variable()
            cnf.add_clause([-parent] + group)
            grouped.append(parent)
        literals = grouped
    cnf.add_clause(literals)


@dataclass
class CompletionEncoding:
    """``#Comp`` as a projected model count onto the fact variables."""

    cnf: CNF
    choices: ChoiceVariables
    facts: FactVariables
    projection: frozenset[int]
    num_matches: int | None  # None when no query constrains the count


def compile_completion_cnf(
    db: IncompleteDatabase, query: BooleanQuery | None = None
) -> CompletionEncoding:
    """Compile ``(D, q)`` into the canonical-fact encoding of ``#Comp``.

    The projected model count of the returned CNF onto ``projection``
    equals the number of distinct completions of ``D`` (satisfying ``q``
    when one is given).
    """
    cnf = CNF()
    choices = ChoiceVariables(cnf, db)
    facts = FactVariables(cnf, db)

    for ground in facts.facts():
        fact_var = facts.var(ground)
        producers = facts.producers[ground]
        forced = any(not conditions for conditions in producers)
        for conditions in producers:
            if conditions:
                cnf.add_clause(
                    [-choices.var(null, value) for null, value in conditions]
                    + [fact_var]
                )
        if forced:
            # A ground input fact: present in every completion.
            cnf.add_clause([fact_var])
            continue
        supports = [-fact_var]
        for conditions in producers:
            if len(conditions) == 1:
                ((null, value),) = conditions
                supports.append(choices.var(null, value))
            else:
                commander = cnf.new_variable()
                for null, value in conditions:
                    cnf.add_clause((-commander, choices.var(null, value)))
                supports.append(commander)
        cnf.add_clause(supports)

    num_matches: int | None = None
    if query is not None:
        matches = enumerate_completion_matches(facts.facts(), query)
        num_matches = len(matches)
        witnesses = []
        for used in matches:
            if len(used) == 1:
                witnesses.append(facts.var(next(iter(used))))
            else:
                witness = cnf.new_variable()
                for fact in used:
                    cnf.add_clause((-witness, facts.var(fact)))
                witnesses.append(witness)
        # Empty DNF compiles to the empty clause: no completion satisfies q.
        cnf.add_clause(witnesses)

    return CompletionEncoding(
        cnf=cnf,
        choices=choices,
        facts=facts,
        projection=frozenset(facts.variables()),
        num_matches=num_matches,
    )
