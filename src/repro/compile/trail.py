"""The trail: an occurrence-indexed clause store with in-place propagation.

:class:`ClauseStore` is the mutable heart of the trail-based model counter
(:mod:`repro.compile.sharpsat`).  Where the retained reference counter
(:mod:`repro.compile.sharpsat_reference`) rebuilds the whole residual
formula as fresh clause tuples on every decision, the store keeps **one**
copy of every clause and two integers of live state per clause:

* ``sat[ci]`` — how many of the clause's literals are currently true
  (``0`` means the clause is still live);
* ``free[ci]`` — how many of its literals are still unassigned.

Assigning a literal walks only the clauses its variable occurs in (the
occurrence index, built once), bumping those counters in place: a clause
turns **unit** when ``sat == 0 and free == 1`` (the survivor is queued for
propagation) and **conflicting** at ``sat == 0 and free == 0``.  All
assignments land on a single :attr:`trail`; :meth:`backtrack` pops it and
replays the counter updates in reverse, so undoing a decision costs
exactly what making it cost — touched clauses, not formula size.

The store deliberately knows nothing about counting, components, caching
or traces — those live in the counter.  It exposes the pieces they need:
per-clause static variable bitsets (:attr:`var_masks`), the trail mark /
backtrack pair, and :meth:`snapshot` for the invariant tests (a
propagate/backtrack round trip must restore the snapshot bit for bit).
"""

from __future__ import annotations

from typing import Iterable, Sequence


class ClauseStore:
    """One formula, occurrence-indexed, with trail-based in-place state."""

    __slots__ = (
        "num_variables", "clauses", "occ_pos", "occ_neg",
        "free", "sat", "value", "trail", "var_masks",
        "has_empty", "units",
        "propagations", "conflicts", "max_trail_depth",
    )

    def __init__(
        self, num_variables: int, clauses: Iterable[Sequence[int]]
    ) -> None:
        self.num_variables = num_variables
        #: Clause literal tuples, canonically sorted by variable.
        self.clauses: list[tuple[int, ...]] = [
            tuple(clause) for clause in clauses
        ]
        size = num_variables + 1
        #: ``occ_pos[v]`` / ``occ_neg[v]`` — indices of clauses containing
        #: the literal ``v`` / ``-v``.  Built once; never mutated.
        self.occ_pos: list[list[int]] = [[] for _ in range(size)]
        self.occ_neg: list[list[int]] = [[] for _ in range(size)]
        self.free: list[int] = []
        self.sat: list[int] = []
        #: Static bitset of each clause's variables (bit ``v`` set).
        self.var_masks: list[int] = []
        #: ``value[v]``: 0 unassigned, 1 true, -1 false.
        self.value: list[int] = [0] * size
        #: Assigned literals in assignment order.
        self.trail: list[int] = []
        self.has_empty = False
        #: Literals of the input's unit clauses (root propagation seeds).
        self.units: list[int] = []
        #: Lifetime search statistics, maintained at propagate-call
        #: boundaries only (plain int adds; never touched per literal).
        self.propagations = 0
        self.conflicts = 0
        self.max_trail_depth = 0
        for index, clause in enumerate(self.clauses):
            mask = 0
            for literal in clause:
                if literal > 0:
                    self.occ_pos[literal].append(index)
                    mask |= 1 << literal
                else:
                    self.occ_neg[-literal].append(index)
                    mask |= 1 << -literal
            self.free.append(len(clause))
            self.sat.append(0)
            self.var_masks.append(mask)
            if not clause:
                self.has_empty = True
            elif len(clause) == 1:
                self.units.append(clause[0])

    # -- trail -------------------------------------------------------------

    def mark(self) -> int:
        """The current trail height; pass to :meth:`backtrack` to undo."""
        return len(self.trail)

    def propagate(self, literals: Iterable[int]) -> bool:
        """Assign ``literals`` and run unit propagation to fixpoint.

        Returns ``False`` on conflict (a clause ran out of literals, or a
        queued literal contradicts the current assignment).  Either way
        every counter update is matched by the trail, so the caller
        unwinds with ``backtrack(mark)`` — there is no torn state.
        """
        value = self.value
        free = self.free
        sat = self.sat
        occ_pos = self.occ_pos
        occ_neg = self.occ_neg
        clauses = self.clauses
        trail = self.trail
        queue = list(literals)
        cursor = 0
        conflict = False
        height = len(trail)
        while cursor < len(queue):
            literal = queue[cursor]
            cursor += 1
            variable = literal if literal > 0 else -literal
            current = value[variable]
            if current:
                if (current > 0) != (literal > 0):
                    self.propagations += len(trail) - height
                    self.conflicts += 1
                    return False
                continue
            value[variable] = 1 if literal > 0 else -1
            trail.append(literal)
            if literal > 0:
                satisfied, touched = occ_pos[variable], occ_neg[variable]
            else:
                satisfied, touched = occ_neg[variable], occ_pos[variable]
            for ci in satisfied:
                sat[ci] += 1
                free[ci] -= 1
            # The decrements below must run even after a conflict is found
            # mid-loop: backtrack replays them symmetrically, so the
            # counters may never be left half-updated.  Only the *checks*
            # stop once the branch is dead.
            for ci in touched:
                remaining = free[ci] - 1
                free[ci] = remaining
                if not conflict and not sat[ci]:
                    if remaining == 0:
                        conflict = True
                    elif remaining == 1:
                        for unit in clauses[ci]:
                            unit_var = unit if unit > 0 else -unit
                            if not value[unit_var]:
                                queue.append(unit)
                                break
            if conflict:
                self.propagations += len(trail) - height
                self.conflicts += 1
                return False
        depth = len(trail)
        self.propagations += depth - height
        if depth > self.max_trail_depth:
            self.max_trail_depth = depth
        return True

    def backtrack(self, mark: int) -> None:
        """Pop the trail back to ``mark``, reversing every counter update."""
        value = self.value
        free = self.free
        sat = self.sat
        occ_pos = self.occ_pos
        occ_neg = self.occ_neg
        trail = self.trail
        while len(trail) > mark:
            literal = trail.pop()
            variable = literal if literal > 0 else -literal
            value[variable] = 0
            if literal > 0:
                satisfied, touched = occ_pos[variable], occ_neg[variable]
            else:
                satisfied, touched = occ_neg[variable], occ_pos[variable]
            for ci in satisfied:
                sat[ci] -= 1
                free[ci] += 1
            for ci in touched:
                free[ci] += 1

    # -- inspection --------------------------------------------------------

    def live_indices(self) -> list[int]:
        """Indices of clauses no current assignment satisfies."""
        sat = self.sat
        return [ci for ci in range(len(self.clauses)) if not sat[ci]]

    def reduced_clause(self, index: int) -> tuple[int, ...]:
        """The clause's unassigned literals, in stored (canonical) order."""
        value = self.value
        return tuple(
            literal
            for literal in self.clauses[index]
            if not value[literal if literal > 0 else -literal]
        )

    def snapshot(self) -> tuple:
        """Full live-state fingerprint, for trail round-trip tests."""
        return (
            tuple(self.free),
            tuple(self.sat),
            tuple(self.value),
            tuple(self.trail),
        )

    def __repr__(self) -> str:
        return "ClauseStore(n=%d, clauses=%d, trail=%d)" % (
            self.num_variables, len(self.clauses), len(self.trail),
        )
