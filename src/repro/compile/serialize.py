"""Versioned binary serialization of d-DNNF circuit artifacts.

A circuit compiled in one process is only useful to another process if it
can travel: the batch engine compiles circuits in worker processes and
installs the artifacts into the parent's circuit store
(:mod:`repro.engine.cache`), and an artifact on the wire must be compact,
self-describing and tamper-evident.  This module is the codec layer:

* **framing** — every payload is ``magic (4 bytes) | version (u16 LE) |
  crc32 of the body (u32 LE) | body``.  :func:`unframe` rejects wrong
  magic, unknown versions and corrupted bodies with
  :class:`CircuitFormatError` *before* any body byte is interpreted;
* **varints** — all integers are LEB128 varints (signed values zigzag
  first), so the node table costs one to two bytes per small id and the
  exact big-int counts of the wrappers serialize without truncation;
* **node table** — :func:`dumps_circuit` writes the
  :class:`~repro.compile.circuit.DDNNF` node array in its native
  topological order (children strictly before parents), and
  :func:`loads_circuit` re-validates that order, so a rehydrated circuit
  is safe for the iterative linear passes without any re-sorting.

The wrapper artifacts (:class:`~repro.compile.backend.ValuationCircuit` /
:class:`~repro.compile.backend.CompletionCircuit`) embed a circuit payload
plus their scalar state; their variable maps are *not* serialized — they
are reconstructed deterministically from the instance the parent already
holds, which keeps the format free of pickled Python objects.
"""

from __future__ import annotations

import zlib

from repro.compile.circuit import (
    DDNNF,
    KIND_DECISION,
    KIND_FALSE,
    KIND_PRODUCT,
    KIND_TRUE,
)

#: Current version of every circuit payload this module writes.
FORMAT_VERSION = 1

#: Frame magic of a bare d-DNNF payload.
CIRCUIT_MAGIC = b"RDNF"


class CircuitFormatError(ValueError):
    """A circuit payload that cannot be trusted: wrong magic, unknown
    version, checksum mismatch, or a malformed node table."""


# ---------------------------------------------------------------------------
# varint primitives
# ---------------------------------------------------------------------------


class Writer:
    """Appends varint-coded values to a growing body buffer."""

    __slots__ = ("_body",)

    def __init__(self) -> None:
        self._body = bytearray()

    def uint(self, value: int) -> None:
        """One unsigned LEB128 varint (arbitrary-precision)."""
        if 0 <= value < 0x80:
            # Node ids, literals and lengths are almost always one byte;
            # the fast path matters because a circuit artifact is a few
            # hundred thousand of these back to back.
            self._body.append(value)
            return
        if value < 0:
            raise ValueError("uint() takes a nonnegative value")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._body.append(byte | 0x80)
            else:
                self._body.append(byte)
                return

    def int(self, value: int) -> None:
        """One signed varint (zigzag then LEB128)."""
        self.uint(_zigzag(value))

    def blob(self, data: bytes) -> None:
        """A length-prefixed byte string."""
        self.uint(len(data))
        self._body.extend(data)

    def getvalue(self) -> bytes:
        return bytes(self._body)


def _zigzag(value: int) -> int:
    # Arbitrary-precision zigzag: nonnegative -> even, negative -> odd.
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


class Reader:
    """Consumes varint-coded values from a body buffer, bounds-checked."""

    __slots__ = ("_body", "_pos")

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._pos = 0

    def uint(self) -> int:
        body = self._body
        position = self._pos
        if position >= len(body):
            raise CircuitFormatError("truncated payload: varint runs off the end")
        byte = body[position]
        if not byte & 0x80:  # single-byte fast path (the common case)
            self._pos = position + 1
            return byte
        result = 0
        shift = 0
        while True:
            if position >= len(body):
                raise CircuitFormatError("truncated payload: varint runs off the end")
            byte = body[position]
            position += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self._pos = position
                return result
            shift += 7

    def int(self) -> int:
        encoded = self.uint()
        return (encoded >> 1) if encoded & 1 == 0 else -((encoded + 1) >> 1)

    def blob(self) -> bytes:
        length = self.uint()
        if self._pos + length > len(self._body):
            raise CircuitFormatError("truncated payload: blob runs off the end")
        data = self._body[self._pos:self._pos + length]
        self._pos += length
        return data

    def expect_end(self) -> None:
        if self._pos != len(self._body):
            raise CircuitFormatError(
                "%d trailing bytes after the payload" % (len(self._body) - self._pos)
            )


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def frame(magic: bytes, body: bytes, version: int = FORMAT_VERSION) -> bytes:
    """Wrap a body in the ``magic | version | crc32 | body`` frame."""
    if len(magic) != 4:
        raise ValueError("frame magic must be exactly 4 bytes")
    header = magic + version.to_bytes(2, "little")
    checksum = zlib.crc32(body) & 0xFFFFFFFF
    return header + checksum.to_bytes(4, "little") + body


def unframe(data: bytes, magic: bytes, version: int = FORMAT_VERSION) -> bytes:
    """Validate a frame and return its body, or raise :class:`CircuitFormatError`.

    Checks run cheapest-first: length, magic, version, then the crc32 of
    the body — so a version bump is reported as such rather than as a
    checksum failure.
    """
    if len(data) < 10:
        raise CircuitFormatError("payload shorter than the 10-byte frame header")
    if data[:4] != magic:
        raise CircuitFormatError(
            "bad magic %r (expected %r)" % (bytes(data[:4]), magic)
        )
    found = int.from_bytes(data[4:6], "little")
    if found != version:
        raise CircuitFormatError(
            "unsupported format version %d (this build reads version %d)"
            % (found, version)
        )
    checksum = int.from_bytes(data[6:10], "little")
    body = data[10:]
    if zlib.crc32(body) & 0xFFFFFFFF != checksum:
        raise CircuitFormatError("checksum mismatch: payload corrupted in transit")
    return body


# ---------------------------------------------------------------------------
# the d-DNNF node table
# ---------------------------------------------------------------------------

def write_circuit_body(writer: Writer, circuit: DDNNF) -> None:
    """Append a circuit's node table to an open body (no framing).

    The circuit's flat int program is walked in place — its kind codes
    are the wire's kind codes, so serialization is one sequential pass
    with no per-node tuple views.
    """
    writer.uint(circuit.num_variables)
    writer.uint(circuit.root)
    countable = sorted(circuit.countable)
    writer.uint(len(countable))
    previous = 0
    for variable in countable:
        writer.uint(variable - previous)  # delta-coded ascending list
        previous = variable
    code = circuit._code
    offsets = circuit._offsets
    writer.uint(len(offsets))
    for offset in offsets:
        kind = code[offset]
        writer.uint(kind)
        if kind == KIND_PRODUCT:
            length = code[offset + 1]
            writer.uint(length)
            for cursor in range(offset + 2, offset + 2 + length):
                writer.uint(code[cursor])
        elif kind == KIND_DECISION:
            nbranches = code[offset + 1]
            writer.uint(nbranches)
            cursor = offset + 2
            for _ in range(nbranches):
                nlits = code[cursor]
                cursor += 1
                writer.uint(nlits)
                for position in range(cursor, cursor + nlits):
                    writer.int(code[position])
                cursor += nlits
                nfree = code[cursor]
                cursor += 1
                writer.uint(nfree)
                for position in range(cursor, cursor + nfree):
                    writer.uint(code[position])
                cursor += nfree
                writer.uint(code[cursor])
                cursor += 1


def read_circuit_body(reader: Reader) -> DDNNF:
    """Parse and *validate* a circuit node table from an open body.

    Validation guarantees the invariants every linear pass relies on:
    children precede parents, the root exists, literals name variables in
    range.  A payload that passes the frame checksum but violates these
    (a bug, not line noise) still raises :class:`CircuitFormatError`.
    The parse writes straight into the flat int program the passes
    execute — rehydration builds no intermediate node tuples.
    """
    num_variables = reader.uint()
    root = reader.uint()
    countable_size = reader.uint()
    countable = []
    previous = 0
    for _ in range(countable_size):
        delta = reader.uint()
        if delta == 0:
            # The list is strictly ascending from a floor of 1, so every
            # delta is positive; a zero delta would smuggle in variable 0
            # or a duplicate entry past the checksum.
            raise CircuitFormatError(
                "countable list is not strictly ascending from 1"
            )
        previous += delta
        countable.append(previous)
    if countable and countable[-1] > num_variables:
        raise CircuitFormatError(
            "countable variable %d outside 1..%d" % (countable[-1], num_variables)
        )
    num_nodes = reader.uint()
    code: list[int] = []
    offsets: list[int] = []
    for index in range(num_nodes):
        kind = reader.uint()
        offsets.append(len(code))
        if kind == KIND_FALSE or kind == KIND_TRUE:
            code.append(kind)
            continue
        if kind == KIND_PRODUCT:
            length = reader.uint()
            code.append(kind)
            code.append(length)
            for _ in range(length):
                child = reader.uint()
                if child >= index:
                    raise CircuitFormatError(
                        "node %d references child %d: not topologically ordered"
                        % (index, child)
                    )
                code.append(child)
            continue
        if kind != KIND_DECISION:
            raise CircuitFormatError("unknown node kind code %d" % kind)
        nbranches = reader.uint()
        code.append(kind)
        code.append(nbranches)
        for _ in range(nbranches):
            nlits = reader.uint()
            code.append(nlits)
            for _ in range(nlits):
                literal = reader.int()
                if literal == 0 or abs(literal) > num_variables:
                    raise CircuitFormatError(
                        "branch literal %d outside the variable range" % literal
                    )
                code.append(literal)
            nfree = reader.uint()
            code.append(nfree)
            for _ in range(nfree):
                variable = reader.uint()
                if not 1 <= variable <= num_variables:
                    raise CircuitFormatError(
                        "freed variable %d outside the variable range" % variable
                    )
                code.append(variable)
            child = reader.uint()
            if child >= index:
                raise CircuitFormatError(
                    "node %d references child %d: not topologically ordered"
                    % (index, child)
                )
            code.append(child)
    if not 0 <= root < num_nodes:
        raise CircuitFormatError("root %d outside the %d-node table" % (root, num_nodes))
    return DDNNF.from_program(
        code,
        offsets,
        root=root,
        num_variables=num_variables,
        countable=countable,
    )


def dumps_circuit(circuit: DDNNF) -> bytes:
    """Serialize a bare :class:`DDNNF` to its framed binary form."""
    writer = Writer()
    write_circuit_body(writer, circuit)
    return frame(CIRCUIT_MAGIC, writer.getvalue())


def loads_circuit(data: bytes) -> DDNNF:
    """Rehydrate a bare :class:`DDNNF` from :func:`dumps_circuit` output."""
    reader = Reader(unframe(data, CIRCUIT_MAGIC))
    circuit = read_circuit_body(reader)
    reader.expect_end()
    return circuit


__all__ = [
    "CIRCUIT_MAGIC",
    "CircuitFormatError",
    "FORMAT_VERSION",
    "Reader",
    "Writer",
    "dumps_circuit",
    "frame",
    "loads_circuit",
    "read_circuit_body",
    "unframe",
    "write_circuit_body",
]
