"""Knowledge compilation: lineage → CNF → exact model counting.

The paper's Table 1 places most ``#Val`` / ``#Comp`` cells in #P-hard
territory, where the only general-purpose exact tool the repo had was
brute-force enumeration of all valuations.  This subsystem gives the hard
cells a scalable exact path, the standard one from the probabilistic-
database and knowledge-compilation literature:

1. **Lineage** (:mod:`repro.compile.lineage`) — compile ``(D, q)`` into a
   monotone DNF over null-assignment indicator variables (or, for
   completions, fact-membership variables);
2. **Encoding** (:mod:`repro.compile.encode`, with variable maps in
   :mod:`repro.compile.variables`) — turn it into a CNF whose (projected)
   models are in bijection with the falsifying valuations resp. the
   completions, using exactly-one domain blocks;
3. **Counting** (:mod:`repro.compile.sharpsat`, guided by the treewidth
   heuristic of :mod:`repro.compile.ordering`) — an exact #SAT engine
   with unit propagation, connected-component decomposition, component
   caching and projected counting.

4. **Trace compilation** (:mod:`repro.compile.ddnnf_trace`,
   :mod:`repro.compile.circuit`) — optionally, the counter's search is
   recorded once as a d-DNNF arithmetic circuit; uniform counts, weighted
   counts, all-pairs marginals and exact samples are then linear passes
   over the circuit instead of fresh searches.

:mod:`repro.compile.backend` packages the pipeline as the
``method='lineage'`` (search per question) and ``method='circuit'``
(compile once, ask many) backends of :mod:`repro.exact.dispatch`; either
way the cost is exponential in the heuristic treewidth of the lineage,
not in the number of nulls, which is what turns the hard cells from
toy-only into a workload.
"""

from repro.compile.backend import (
    CompletionCircuit,
    LineageReport,
    ValuationCircuit,
    artifact_from_bytes,
    count_completions_circuit,
    count_completions_lineage,
    count_valuations_circuit,
    count_valuations_lineage,
    explain_completions,
    explain_valuations,
    explain_valuations_circuit,
    lineage_supports,
    valuation_marginals,
    valuation_marginals_recount,
)
from repro.compile.circuit import DDNNF, CircuitSampler
from repro.compile.ddnnf_trace import TraceBuilder
from repro.compile.encode import (
    CompletionEncoding,
    SatisfactionEncoding,
    ValuationEncoding,
    compile_completion_cnf,
    compile_satisfaction_cnf,
    compile_valuation_cnf,
)
from repro.compile.lineage import (
    LineageUnsupportedQuery,
    enumerate_completion_matches,
    enumerate_valuation_matches,
)
from repro.compile.serialize import CircuitFormatError
from repro.compile.sharpsat import ModelCounter, count_models

__all__ = [
    "CircuitFormatError",
    "LineageReport",
    "artifact_from_bytes",
    "ValuationCircuit",
    "CompletionCircuit",
    "count_completions_lineage",
    "count_valuations_lineage",
    "count_completions_circuit",
    "count_valuations_circuit",
    "explain_completions",
    "explain_valuations",
    "explain_valuations_circuit",
    "valuation_marginals",
    "valuation_marginals_recount",
    "lineage_supports",
    "DDNNF",
    "CircuitSampler",
    "TraceBuilder",
    "CompletionEncoding",
    "SatisfactionEncoding",
    "ValuationEncoding",
    "compile_completion_cnf",
    "compile_satisfaction_cnf",
    "compile_valuation_cnf",
    "LineageUnsupportedQuery",
    "enumerate_completion_matches",
    "enumerate_valuation_matches",
    "ModelCounter",
    "count_models",
]
