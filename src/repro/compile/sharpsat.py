"""Exact model counting (#SAT) on a trail: in-place state, bitset components.

A pure-Python counter in the sharpSAT family, specialised for the CNFs the
lineage compiler emits.  The search machinery is built around **persistent
in-place state** instead of immutable formula copies:

* one occurrence-indexed :class:`~repro.compile.trail.ClauseStore` holds
  the formula for the whole search; a decision assigns literals on a
  **trail** and unit-propagates by bumping per-clause satisfied/free
  counters, so a branch costs touched-clause work and backtracking is the
  exact reverse replay — the formula is never rebuilt;
* **connected components** of the residual formula are computed over live
  (unassigned-variable) **bitsets**: each live clause contributes one int
  mask, masks that intersect merge, and variable-disjoint parts are
  counted independently and multiplied;
* **component caching** — residual components are memoised under compact
  integer content signatures (each reduced clause packs into one int, a
  component keys on the sorted int tuple), so shared substructure is
  counted once.  Signatures depend only on clause *content*, matching the
  reference counter's cache equivalence exactly;
* a **preprocessing pass** (:mod:`repro.compile.preprocess`) runs once
  before the search: failed-literal/backbone probing, equivalent-literal
  substitution and (projected mode) pure-literal elimination, each applied
  only where it provably preserves the count;
* a **static branching order** from a treewidth heuristic
  (:mod:`repro.compile.ordering`) — the counter feeds the heuristic the
  adjacency bitsets its occurrence index already derived, so the primal
  graph is built exactly once;
* optional **projected counting**: with a projection set ``P``, models
  that agree on ``P`` are counted once — the engine branches on ``P``
  variables only and falls back to a satisfiability check once a component
  contains none.  The satisfiability check *is* the counting routine with
  an early exit (first model wins), over the same trail and propagation;
* optional **trace recording**: hand the constructor a
  :class:`~repro.compile.ddnnf_trace.TraceBuilder` and the search emits a
  d-DNNF circuit (:mod:`repro.compile.circuit`) of its decisions, unit
  propagations, component splits and cache reuses as it counts.

The previous tuple-based implementation is retained verbatim as
:mod:`repro.compile.sharpsat_reference` and reachable through
``reference=True`` — the differential-testing oracle every randomized
suite cross-validates against, bit for bit.

Counts are exact big integers.  The recursion is exponential in the width
of the branching order, not in the number of variables — hard-cell lineage
CNFs with bounded-treewidth structure count in polynomial time.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.complexity.cnf import CNF
from repro.compile.ordering import branching_order_masks
from repro.compile.preprocess import PreprocessResult, preprocess_store
from repro.compile.trail import ClauseStore
from repro.obs import incr as _incr, observe as _observe, span as _span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compile.ddnnf_trace import TraceBuilder
    from repro.compile.sharpsat_reference import ReferenceModelCounter


def _mask_bits(mask: int) -> list[int]:
    """Set bit positions of ``mask``, ascending."""
    bits = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return bits


class ModelCounter:
    """Exact (projected) model counter over a :class:`CNF`.

    ``projection`` — variables to count over; ``None`` counts full models.
    ``order`` — static branching order; defaults to the reverse min-fill
    order of the formula's primal graph.
    ``trace`` — optional :class:`TraceBuilder`; when given, :meth:`count`
    additionally records the search as a d-DNNF circuit rooted at
    :attr:`trace_root`.
    ``preprocess`` — run the preprocessing pass before the search (root
    unit propagation always runs); ``probe`` forwards to
    :func:`~repro.compile.preprocess.preprocess_store` (``'auto'`` probes
    in projected mode only — see there for why).
    ``reference`` — delegate to the retained tuple-based implementation
    (:mod:`repro.compile.sharpsat_reference`); the slow differential oracle.
    """

    def __init__(
        self,
        cnf: CNF,
        projection: Iterable[int] | None = None,
        order: Sequence[int] | None = None,
        trace: "TraceBuilder | None" = None,
        preprocess: bool = True,
        probe: "bool | str" = "auto",
        reference: bool = False,
    ) -> None:
        self._cnf = cnf
        self._projection: frozenset[int] | None = (
            None if projection is None else frozenset(projection)
        )
        if self._projection is not None and any(
            v < 1 or v > cnf.num_variables for v in self._projection
        ):
            raise ValueError("projection variables must be in 1..num_variables")
        self._trace = trace
        #: Root node of the recorded circuit (set by :meth:`count` when
        #: tracing).
        self.trace_root: int | None = None
        self.cache_hits = 0
        self.components_split = 0
        #: Branch literals tried by the search.
        self.decisions = 0
        #: What the preprocessing pass did (set by :meth:`count`).
        self.preprocessing: PreprocessResult | None = None
        self.width: int | None
        self._cache: dict
        self._stats_flushed = False
        self._impl: "ReferenceModelCounter | None" = None
        if reference:
            from repro.compile.sharpsat_reference import (
                ReferenceModelCounter as _Reference,
            )

            self._impl = _Reference(
                cnf, projection=projection, order=order, trace=trace
            )
            self.width = self._impl.width
            self._cache = self._impl._cache
            return

        self._preprocess_enabled = preprocess
        self._probe = probe
        self._proj_mask: int | None = None
        if self._projection is not None:
            mask = 0
            for variable in self._projection:
                mask |= 1 << variable
            self._proj_mask = mask

        self._store = ClauseStore(cnf.num_variables, cnf.clauses)
        if order is None:
            with _span("compile.ordering", variables=cnf.num_variables):
                order, width = branching_order_masks(self._adjacency_masks())
            self.width = width
        else:
            order = list(order)
            self.width = None
        # Rank as a flat positional table: one list index per variable
        # beats a dict probe in the innermost branching loop.
        rank = [len(order)] * (cnf.num_variables + 1)
        for position, variable in enumerate(order):
            rank[variable] = position
        self._rank = rank
        self._key_base = 2 * cnf.num_variables + 2
        self._index_store(self._store)
        self._cache = {}
        self._sat_cache: dict[tuple[int, ...], bool] = {}
        self._result: int | None = None

    def _index_store(self, store: ClauseStore) -> None:
        """Per-clause derived tables the split fast path reads:
        lengths (to recognize untouched clauses) and the full-clause
        content signatures (so untouched clauses never rescan literals)."""
        base = self._key_base
        lengths = []
        full_pack = []
        for clause in store.clauses:
            lengths.append(len(clause))
            packed = 0
            for literal in clause:
                packed = packed * base + (
                    2 * literal if literal > 0 else 1 - 2 * literal
                )
            full_pack.append(packed)
        self._lengths = lengths
        self._full_pack = full_pack

    def _adjacency_masks(self) -> dict[int, int]:
        """Primal-graph adjacency bitsets from the occurrence index.

        The store already knows each clause's variable bitset and each
        variable's clause list, so the primal graph falls out of one OR
        per occurrence — the ordering heuristic never rescans the clauses.
        """
        store = self._store
        var_masks = store.var_masks
        adjacency: dict[int, int] = {}
        for variable in range(1, store.num_variables + 1):
            mask = 0
            for ci in store.occ_pos[variable]:
                mask |= var_masks[ci]
            for ci in store.occ_neg[variable]:
                mask |= var_masks[ci]
            if mask:
                adjacency[variable] = mask & ~(1 << variable)
        return adjacency

    # -- public API --------------------------------------------------------

    def count(self) -> int:
        """The (projected) model count of the formula.

        Temporarily raises the recursion limit — the search recurses once
        per decision level, and the default limit is too tight for
        formulas with a few hundred variables.
        """
        if self._impl is not None:
            with _span("compile.search", core="reference"):
                result = self._impl.count()
            self.trace_root = self._impl.trace_root
            self.cache_hits = self._impl.cache_hits
            self.components_split = self._impl.components_split
            self.decisions = self._impl.decisions
            self._cache = self._impl._cache
            self._flush_stats()
            return result
        if self._result is not None:
            return self._result
        limit = sys.getrecursionlimit()
        needed = 10 * self._cnf.num_variables + 1_000
        try:
            if needed > limit:
                sys.setrecursionlimit(needed)
            with _span("compile.search", core="trail"):
                self._result = self._count_root()
        finally:
            sys.setrecursionlimit(limit)
        self._flush_stats()
        return self._result

    def stats(self) -> dict[str, Any]:
        """The uniform search-statistics vocabulary, both cores.

        Keys are stable across cores; values the trail core tracks but the
        reference core does not (propagations, conflicts, trail depth,
        preprocessing) come back ``None`` there.  Meaningful after
        :meth:`count`; consumers read this instead of the raw attributes.
        """
        if self._impl is not None:
            return self._impl.stats()
        pre = self.preprocessing
        store = self._store
        return {
            "core": "trail",
            "decisions": self.decisions,
            "propagations": store.propagations,
            "conflicts": store.conflicts,
            "max_trail_depth": store.max_trail_depth,
            "cache_hits": self.cache_hits,
            "cache_entries": len(self._cache),
            "sat_cache_entries": len(self._sat_cache),
            "components_split": self.components_split,
            "width": self.width,
            "preprocessing": None
            if pre is None
            else {
                "probes": pre.probes,
                "failed_literals": pre.failed_literals,
                "equivalences": pre.equivalences,
                "forced": len(pre.forced),
                "pure_fixed": len(pre.pure_fixed),
            },
        }

    def _flush_stats(self) -> None:
        """Mirror one finished search into the observability layer: the
        stats vocabulary becomes ``sharpsat.*`` counters (visible to any
        active capture), trail depth an observation.  Runs once."""
        if self._stats_flushed:
            return
        self._stats_flushed = True
        stats = self.stats()
        for key in (
            "decisions",
            "propagations",
            "conflicts",
            "cache_hits",
            "components_split",
        ):
            value = stats.get(key)
            if value:
                _incr("sharpsat.%s" % key, value)
        depth = stats.get("max_trail_depth")
        if depth:
            _observe("sharpsat.max_trail_depth", depth)
        pre = stats.get("preprocessing")
        if pre:
            for key, value in pre.items():
                if value:
                    _incr("sharpsat.preprocess.%s" % key, value)

    # -- root --------------------------------------------------------------

    def _count_root(self) -> int:
        trace = self._trace
        conflict, determined_mask = self._prepare()
        if conflict:
            if trace is not None:
                self.trace_root = trace.false
            return 0
        store = self._store
        live = store.live_indices()
        count, node, live_mask = self._count(live)
        assigned = self._root_assigned
        assigned_mask = 0
        for literal in assigned:
            assigned_mask |= 1 << (literal if literal > 0 else -literal)
        all_mask = (1 << (self._cnf.num_variables + 1)) - 2
        free_mask = all_mask & ~live_mask & ~assigned_mask & ~determined_mask
        if trace is not None:
            assert node is not None
            self.trace_root = trace.decision(
                [(
                    tuple(sorted(assigned, key=abs)),
                    tuple(_mask_bits(free_mask)),
                    node,
                )]
            )
        return (1 << self._count_bits(free_mask)) * count

    def _prepare(self) -> tuple[bool, int]:
        """Root unit propagation plus preprocessing; swaps in the rewritten
        store when substitution fired.  Returns ``(conflict, determined)``."""
        store = self._store
        if store.has_empty:
            return True, 0
        if not store.propagate(store.units):
            return True, 0
        determined_mask = 0
        if self._preprocess_enabled:
            with _span("compile.preprocess"):
                report = preprocess_store(
                    store,
                    projection=self._projection,
                    traced=self._trace is not None,
                    probe=self._probe,
                )
            self.preprocessing = report
            if report.conflict:
                return True, 0
            determined_mask = report.determined_mask
            self._root_assigned = list(store.trail)
            if report.rewritten is not None:
                rebuilt = ClauseStore(store.num_variables, report.rewritten)
                if rebuilt.has_empty or not rebuilt.propagate(rebuilt.units):
                    return True, 0
                # Substituted variables vanish from the clauses; literals
                # the rebuilt store derives are genuinely new (their
                # variables were unassigned in the old store).
                self._root_assigned.extend(rebuilt.trail)
                self._store = rebuilt
                self._index_store(rebuilt)
        else:
            self._root_assigned = list(store.trail)
        return False, determined_mask

    # -- search ------------------------------------------------------------

    def _count_bits(self, mask: int) -> int:
        """How many variables of ``mask`` contribute a free factor of two."""
        if self._proj_mask is not None:
            mask &= self._proj_mask
        return mask.bit_count()

    def _split(
        self, indices: list[int]
    ) -> list[tuple[list[int], int, tuple[int, ...]]]:
        """Variable-connected components of live clauses, as
        ``(clause indices, unassigned-variable bitset, cache key)``.

        Each clause contributes its unassigned-variable bitset and its
        packed content signature; bitsets that intersect merge into one
        component (existing groups are pairwise variable-disjoint, so a
        clause is the only thing that can bridge them).  The hot case
        costs no literal work at all: a clause propagation never touched
        (``free == len``) reuses the store's static bitset and the
        precomputed full-clause signature, so only clauses a decision
        actually reduced are rescanned.  Signatures pack literals as
        base-``2n+2`` digits in stored (canonical) clause order — two
        clauses sign equally exactly when their reduced contents are
        equal, so the cache keeps the reference counter's equivalence
        classes at integer-hash prices.  Deterministic: components come
        out ordered by their smallest clause index.
        """
        store = self._store
        value = store.value
        clauses = store.clauses
        free = store.free
        var_masks = store.var_masks
        lengths = self._lengths
        full_pack = self._full_pack
        base = self._key_base

        count = len(indices)
        if not count:
            return []
        masks = [0] * count
        packs = [0] * count
        for position, ci in enumerate(indices):
            if free[ci] == lengths[ci]:
                masks[position] = var_masks[ci]
                packs[position] = full_pack[ci]
            else:
                mask = 0
                packed = 0
                for literal in clauses[ci]:
                    variable = literal if literal > 0 else -literal
                    if not value[variable]:
                        mask |= 1 << variable
                        packed = packed * base + (
                            2 * literal if literal > 0 else 1 - 2 * literal
                        )
                masks[position] = mask
                packs[position] = packed

        # Fast path: accumulate highest-index first; if every clause meets
        # the union of its successors the whole list is one component (the
        # overwhelmingly common verdict).  Backwards, because the encoder
        # emits the mutually disjoint exactly-one blocks first and the
        # match clauses that bridge them last — scanned in reverse the
        # connectors come first and the union grows without gaps.
        accumulated = masks[count - 1]
        connected = True
        for position in range(count - 2, -1, -1):
            mask = masks[position]
            if mask & accumulated:
                accumulated |= mask
            else:
                connected = False
                break
        if connected:
            packs.sort()
            return [(indices, accumulated, tuple(packs))]

        # General case: disjoint group masks, clauses bridge and merge
        # them (reversed for the same connectors-first reason: it keeps
        # the live group count small).
        group_masks: list[int] = []
        group_members: list[list[int]] = []
        group_packed: list[list[int]] = []
        for position in range(count - 1, -1, -1):
            ci = indices[position]
            mask = masks[position]
            packed = packs[position]
            hit = -1
            for gi in range(len(group_masks)):
                gm = group_masks[gi]
                if gm and gm & mask:
                    if hit < 0:
                        hit = gi
                        group_masks[gi] = gm | mask
                        group_members[gi].append(ci)
                        group_packed[gi].append(packed)
                    else:
                        group_masks[hit] |= gm
                        group_masks[gi] = 0
                        group_members[hit].extend(group_members[gi])
                        group_members[gi] = []
                        group_packed[hit].extend(group_packed[gi])
                        group_packed[gi] = []
            if hit < 0:
                group_masks.append(mask)
                group_members.append([ci])
                group_packed.append([packed])

        components = []
        for gi, group_mask in enumerate(group_masks):
            if not group_mask:
                continue  # tombstone of a merged group
            members = group_members[gi]
            members.sort()
            signature = group_packed[gi]
            signature.sort()
            components.append((members, group_mask, tuple(signature)))
        components.sort(key=lambda component: component[0][0])
        return components

    def _count(
        self, indices: list[int]
    ) -> tuple[int, int | None, int]:
        """Count live clauses ``indices``: split, conquer, multiply.

        Returns ``(count, circuit node or None, live-variable bitset)``.
        """
        trace = self._trace
        if not indices:
            return 1, (None if trace is None else trace.true), 0
        components = self._split(indices)
        live_mask = 0
        for _members, mask, _key in components:
            live_mask |= mask
        if len(components) > 1:
            self.components_split += 1
        result = 1
        nodes: list[int] = []
        for members, mask, key in components:
            count, node = self._count_component(members, mask, key)
            result *= count
            if trace is None:
                if result == 0:
                    return 0, None, live_mask
            else:
                assert node is not None
                nodes.append(node)
        if trace is None:
            return result, None, live_mask
        return result, trace.product(nodes), live_mask

    def _count_component(
        self, indices: list[int], comp_mask: int, key: tuple[int, ...]
    ) -> tuple[int, int | None]:
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        trace = self._trace
        node: int | None = None
        variable = self._pick_variable(comp_mask)
        if variable is None:
            # Projected mode, no projection variable left: the component
            # contributes one projected model iff it is satisfiable.
            satisfiable = self._satisfiable(indices, comp_mask, key)
            result = 1 if satisfiable else 0
            if trace is not None:
                node = trace.constant(satisfiable)
        else:
            store = self._store
            result = 0
            branches = []
            for literal in (variable, -variable):
                self.decisions += 1
                mark = store.mark()
                if not store.propagate((literal,)):
                    store.backtrack(mark)
                    continue
                assigned = store.trail[mark:]
                sat = store.sat
                live = [ci for ci in indices if not sat[ci]]
                count, child, live_mask = self._count(live)
                if count or trace is not None:
                    assigned_mask = 0
                    for assigned_literal in assigned:
                        assigned_mask |= 1 << (
                            assigned_literal
                            if assigned_literal > 0
                            else -assigned_literal
                        )
                    freed_mask = comp_mask & ~assigned_mask & ~live_mask
                    result += (1 << self._count_bits(freed_mask)) * count
                    if trace is not None:
                        assert child is not None
                        branches.append(
                            (
                                tuple(sorted(assigned, key=abs)),
                                tuple(_mask_bits(freed_mask)),
                                child,
                            )
                        )
                store.backtrack(mark)
            if trace is not None:
                node = trace.decision(branches)
        entry = (result, node)
        self._cache[key] = entry
        return entry

    def _pick_variable(self, comp_mask: int) -> int | None:
        """Earliest variable of the branching order in the component.

        In projected mode only projection variables qualify; ``None`` means
        the component has none left.
        """
        if self._proj_mask is not None:
            comp_mask &= self._proj_mask
            if not comp_mask:
                return None
        return self._pick_any_variable(comp_mask)

    def _satisfiable(
        self,
        indices: list[int],
        comp_mask: int,
        key: tuple[int, ...],
    ) -> bool:
        """Satisfiability of a residual component.

        This *is* the counting branch loop with an early exit — same
        trail, same propagation, same component split — it just stops at
        the first branch whose components are all satisfiable instead of
        summing.  Verdicts memoise under the same content signatures.
        """
        cached = self._sat_cache.get(key)
        if cached is not None:
            return cached
        store = self._store
        variable = self._pick_any_variable(comp_mask)
        result = False
        for literal in (variable, -variable):
            self.decisions += 1
            mark = store.mark()
            if not store.propagate((literal,)):
                store.backtrack(mark)
                continue
            sat = store.sat
            live = [ci for ci in indices if not sat[ci]]
            satisfied = all(
                self._satisfiable(members, mask, sub_key)
                for members, mask, sub_key in self._split(live)
            )
            store.backtrack(mark)
            if satisfied:
                result = True
                break
        self._sat_cache[key] = result
        return result

    def _pick_any_variable(self, comp_mask: int) -> int:
        """Min-rank variable of the component, projection ignored."""
        rank = self._rank
        best = -1
        best_rank = sys.maxsize
        while comp_mask:
            low = comp_mask & -comp_mask
            variable = low.bit_length() - 1
            comp_mask ^= low
            if rank[variable] < best_rank:
                best_rank = rank[variable]
                best = variable
        return best


def count_models(
    cnf: CNF,
    projection: Iterable[int] | None = None,
    order: Sequence[int] | None = None,
    preprocess: bool = True,
    probe: "bool | str" = "auto",
    reference: bool = False,
) -> int:
    """Convenience wrapper: exact (projected) model count of ``cnf``."""
    return ModelCounter(
        cnf,
        projection=projection,
        order=order,
        preprocess=preprocess,
        probe=probe,
        reference=reference,
    ).count()
