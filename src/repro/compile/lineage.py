"""Lineage of Boolean queries over incomplete databases.

The **lineage** of ``q`` on ``D`` is a Boolean function over the choice
variables ``x[⊥, c]`` that is true under a valuation exactly when
``ν(D) |= q``.  For (unions of) BCQs it is a monotone DNF: one *match* per
way of homomorphically embedding the query into the naive table, where
landing a query term on a null position contributes the condition
``ν(⊥) = c``.  This is the standard bridge from query evaluation to
weighted/model counting used throughout the probabilistic-database
literature (cf. the Kenig–Suciu dichotomy for UCQ model counting): once
the lineage is explicit, ``#Val`` is a model-counting problem.

Matches are enumerated by backtracking over atoms (most-constrained atom
first, mirroring :mod:`repro.eval.homomorphism`), branching over a null's
domain only when an unbound variable meets a null position.  The resulting
DNF is minimized by absorption (a match whose conditions contain another
match's is redundant).

:func:`enumerate_completion_matches` is the completion-side analogue: the
lineage of ``q`` over the *potential facts* of ``D``, a monotone DNF over
fact variables ``y[g]`` used by the ``#Comp`` encoding.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.query import Atom, BCQ, BooleanQuery, Const, UCQ, Var
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term, is_null

#: Conditions of one match: a consistent set of ``(null, value)`` choices.
ValuationMatch = frozenset[tuple[Null, Term]]

#: One completion-side match: the set of potential facts it uses.
CompletionMatch = frozenset[Fact]

#: Beyond this many matches the quadratic absorption pass is skipped.
ABSORPTION_LIMIT = 5_000


class LineageUnsupportedQuery(TypeError):
    """Raised for queries without a monotone DNF lineage (negations,
    arbitrary :class:`~repro.core.query.CustomQuery` procedures)."""


def lineage_supports(query: BooleanQuery | None) -> bool:
    """True when the lineage compiler handles ``query`` (BCQs and UCQs —
    self-joins and constants included; ``None`` for plain ``#Comp``)."""
    return query is None or isinstance(query, (BCQ, UCQ))


def _disjuncts(query: BooleanQuery) -> tuple[BCQ, ...]:
    if isinstance(query, BCQ):
        return (query,)
    if isinstance(query, UCQ):
        return query.disjuncts
    raise LineageUnsupportedQuery(
        "lineage compilation handles BCQs and UCQs; got %s"
        % type(query).__name__
    )


def enumerate_valuation_matches(
    db: IncompleteDatabase, query: BooleanQuery
) -> list[ValuationMatch]:
    """The lineage DNF of ``query`` on ``db``, as a list of matches.

    An empty list means the lineage is constantly false (no completion
    satisfies the query); a match with no conditions means it is
    constantly true (every completion satisfies it — e.g. the query is
    already witnessed by the ground facts).
    """
    matches: set[ValuationMatch] = set()
    # The relation index is shared across disjuncts — a UCQ's BCQs all
    # walk the same naive table, so it is built once, not per disjunct.
    facts_by_relation: dict[str, list[Fact]] = {}
    for fact in sorted(db.facts):
        facts_by_relation.setdefault(fact.relation, []).append(fact)
    for disjunct in _disjuncts(query):
        for conditions in _bcq_matches(db, disjunct, facts_by_relation):
            if not conditions:
                return [frozenset()]
            matches.add(conditions)
    return _absorb(matches)


def _bcq_matches(
    db: IncompleteDatabase,
    query: BCQ,
    facts_by_relation: dict[str, list[Fact]],
) -> Iterator[ValuationMatch]:
    atoms = sorted(
        query.atoms,
        key=lambda atom: len(facts_by_relation.get(atom.relation, ())),
    )
    if any(atom.relation not in facts_by_relation for atom in atoms):
        return

    def match_atoms(
        index: int,
        assignment: dict[Var, Term],
        conditions: dict[Null, Term],
    ) -> Iterator[ValuationMatch]:
        if index == len(atoms):
            yield frozenset(conditions.items())
            return
        atom = atoms[index]
        for fact in facts_by_relation[atom.relation]:
            if fact.arity != atom.arity:
                continue
            for extended_assignment, extended_conditions in _unify(
                atom.terms, fact.terms, assignment, conditions, db
            ):
                yield from match_atoms(
                    index + 1, extended_assignment, extended_conditions
                )

    yield from match_atoms(0, {}, {})


def _unify(
    atom_terms: Sequence,
    fact_terms: Sequence[Term],
    assignment: dict[Var, Term],
    conditions: dict[Null, Term],
    db: IncompleteDatabase,
    position: int = 0,
) -> Iterator[tuple[dict[Var, Term], dict[Null, Term]]]:
    """Unify one atom against one naive-table fact, position by position.

    Yields every ``(variable assignment, null conditions)`` extension; an
    unbound query variable meeting a null position branches over the
    null's domain.
    """
    if position == len(atom_terms):
        yield assignment, conditions
        return
    term = atom_terms[position]
    value = fact_terms[position]

    if isinstance(term, Var) and term not in assignment:
        if is_null(value):
            pinned = conditions.get(value)
            choices = (
                (pinned,) if pinned is not None
                else sorted(db.domain_of(value), key=repr)
            )
            for choice in choices:
                yield from _unify(
                    atom_terms,
                    fact_terms,
                    {**assignment, term: choice},
                    {**conditions, value: choice},
                    db,
                    position + 1,
                )
        else:
            yield from _unify(
                atom_terms,
                fact_terms,
                {**assignment, term: value},
                conditions,
                db,
                position + 1,
            )
        return

    target = term.value if isinstance(term, Const) else assignment[term]
    if is_null(value):
        if conditions.get(value, target) != target:
            return
        if target not in db.domain_of(value):
            return
        yield from _unify(
            atom_terms,
            fact_terms,
            assignment,
            {**conditions, value: target},
            db,
            position + 1,
        )
    elif value == target:
        yield from _unify(
            atom_terms, fact_terms, assignment, conditions, db, position + 1
        )


def enumerate_completion_matches(
    potential_facts: Sequence[Fact], query: BooleanQuery
) -> list[CompletionMatch]:
    """The lineage DNF of ``query`` over a set of ground potential facts.

    Each match is the set of potential facts a homomorphism uses; a
    completion (a subset of the potential facts) satisfies ``query`` iff
    it contains all facts of some match.
    """
    matches: set[CompletionMatch] = set()
    facts_by_relation: dict[str, list[Fact]] = {}
    for fact in potential_facts:
        facts_by_relation.setdefault(fact.relation, []).append(fact)
    for disjunct in _disjuncts(query):
        for used in _ground_matches(disjunct, facts_by_relation):
            matches.add(used)
    return _absorb(matches)


def _ground_matches(
    query: BCQ,
    facts_by_relation: dict[str, list[Fact]],
) -> Iterator[CompletionMatch]:
    atoms = sorted(
        query.atoms,
        key=lambda atom: len(facts_by_relation.get(atom.relation, ())),
    )
    if any(atom.relation not in facts_by_relation for atom in atoms):
        return

    def match_atoms(
        index: int, assignment: dict[Var, Term], used: frozenset[Fact]
    ) -> Iterator[CompletionMatch]:
        if index == len(atoms):
            yield used
            return
        atom = atoms[index]
        for fact in facts_by_relation[atom.relation]:
            if fact.arity != atom.arity:
                continue
            extended = _match_ground(atom, fact, assignment)
            if extended is not None:
                yield from match_atoms(index + 1, extended, used | {fact})

    yield from match_atoms(0, {}, frozenset())


def _match_ground(
    atom: Atom, fact: Fact, assignment: dict[Var, Term]
) -> dict[Var, Term] | None:
    """Extend ``assignment`` so ``atom`` lands on the ground ``fact``."""
    extended = dict(assignment)
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def clause_components(
    num_variables: int, clauses: Sequence[Sequence[int]]
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Partition CNF clauses into variable-connected components.

    Returns ``(variables, clause indices)`` pairs, each sorted, ordered
    by smallest member variable.  Model counts — projected counts
    included — multiply across components, which is what lets the
    incremental layer recompile only the components an insert/delete
    delta touched and splice the rest from cache.  Variables occurring
    in no clause form no component (callers account for them).
    """
    parent = list(range(num_variables + 1))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for clause in clauses:
        if not clause:
            continue
        head = find(abs(clause[0]))
        for literal in clause[1:]:
            root = find(abs(literal))
            if root != head:
                parent[root] = head
    variables_of: dict[int, set[int]] = {}
    clauses_of: dict[int, list[int]] = {}
    for index, clause in enumerate(clauses):
        if not clause:
            continue
        root = find(abs(clause[0]))
        bucket = variables_of.setdefault(root, set())
        bucket.update(abs(literal) for literal in clause)
        clauses_of.setdefault(root, []).append(index)
    return sorted(
        (
            (tuple(sorted(variables)), tuple(clauses_of[root]))
            for root, variables in variables_of.items()
        ),
        key=lambda item: item[0][0],
    )


def component_key(
    kind: str,
    variables: Sequence[int],
    clauses: Sequence[Sequence[int]],
    countable: Sequence[int] = (),
) -> tuple:
    """Version-stable cache key for one clause component.

    Variables are renumbered positionally within the component (global
    variable ``variables[i]`` becomes local ``i + 1``), so a component
    keeps its key across database versions that merely shifted the
    global variable numbering — the reuse the delta splicer depends on.
    ``countable`` (global ids) selects the projection for ``#Comp``
    components.
    """
    local = {variable: i + 1 for i, variable in enumerate(variables)}
    clause_forms = tuple(
        sorted(
            tuple(
                sorted(
                    (1 if literal > 0 else -1) * local[abs(literal)]
                    for literal in clause
                )
            )
            for clause in clauses
        )
    )
    countable_form = tuple(
        sorted(local[variable] for variable in countable if variable in local)
    )
    return ("component", kind, len(variables), countable_form, clause_forms)


def _absorb(matches: set) -> list:
    """Minimize a monotone DNF by absorption: drop supersets of kept sets.

    Skipped beyond :data:`ABSORPTION_LIMIT` matches (quadratic pass); the
    encoding stays correct either way, only less compact.
    """
    ordered = sorted(matches, key=lambda match: (len(match), sorted(map(repr, match))))
    if len(ordered) > ABSORPTION_LIMIT:
        return ordered
    kept: list = []
    for match in ordered:
        if not any(other <= match for other in kept):
            kept.append(match)
    return kept
