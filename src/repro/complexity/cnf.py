"""3-CNF formulas and the ``#k3SAT`` counting problem (Definition D.2).

``#k3SAT`` — given a 3-CNF ``F`` over ``x_1..x_n`` and ``1 <= k <= n``,
count the assignments of ``x_1..x_k`` extendable to satisfying assignments
of ``F`` — is SpanP-complete under parsimonious reductions (Köbler,
Schöning, Torán; Prop. D.3), and is the source of Theorem 6.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Clause:
    """A disjunction of exactly three literals.

    ``variables`` are 1-based indices; ``signs[i]`` is ``True`` for a
    positive literal.  Repeated variables inside a clause are allowed (as
    in the paper's reduction, which treats the clause positionally).
    """

    variables: tuple[int, int, int]
    signs: tuple[bool, bool, bool]

    def __post_init__(self) -> None:
        if len(self.variables) != 3 or len(self.signs) != 3:
            raise ValueError("3-CNF clauses have exactly three literals")
        if any(v < 1 for v in self.variables):
            raise ValueError("variables are 1-based positive indices")

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """``assignment[i-1]`` is the value of variable ``i``."""
        return any(
            assignment[variable - 1] == sign
            for variable, sign in zip(self.variables, self.signs)
        )

    def sign_tuple(self) -> tuple[int, int, int]:
        """The ``(a, b, c) ∈ {0,1}³`` naming the clause's relation in the
        Theorem 6.3 reduction (1 = positive literal)."""
        return tuple(int(sign) for sign in self.signs)  # type: ignore


class CNF3:
    """A 3-CNF formula over variables ``x_1..x_n``."""

    def __init__(self, num_variables: int, clauses: Iterable[Clause]) -> None:
        if num_variables < 1:
            raise ValueError("formulas need at least one variable")
        self._num_variables = num_variables
        self._clauses = tuple(clauses)
        for clause in self._clauses:
            if max(clause.variables) > num_variables:
                raise ValueError(
                    "clause %r uses a variable beyond x_%d"
                    % (clause, num_variables)
                )

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        return all(clause.satisfied_by(assignment) for clause in self._clauses)

    @classmethod
    def from_literals(
        cls, num_variables: int, clause_literals: Iterable[Sequence[int]]
    ) -> "CNF3":
        """Build from DIMACS-style literal triples (negative = negated)."""
        clauses = []
        for literals in clause_literals:
            if len(literals) != 3:
                raise ValueError("each clause needs exactly three literals")
            clauses.append(
                Clause(
                    variables=tuple(abs(l) for l in literals),  # type: ignore
                    signs=tuple(l > 0 for l in literals),  # type: ignore
                )
            )
        return cls(num_variables, clauses)

    def __repr__(self) -> str:
        return "CNF3(n=%d, clauses=%d)" % (
            self._num_variables,
            len(self._clauses),
        )


def count_sat(formula: CNF3) -> int:
    """``#3SAT``: satisfying assignments, by exhaustive enumeration."""
    return sum(
        1
        for bits in product((False, True), repeat=formula.num_variables)
        if formula.satisfied_by(bits)
    )


def count_k3sat(formula: CNF3, k: int) -> int:
    """``#k3SAT(F, k)`` (Definition D.2): distinct prefixes ``x_1..x_k`` of
    satisfying assignments."""
    if not 1 <= k <= formula.num_variables:
        raise ValueError("k must satisfy 1 <= k <= n")
    prefixes: set[tuple[bool, ...]] = set()
    for bits in product((False, True), repeat=formula.num_variables):
        if formula.satisfied_by(bits):
            prefixes.add(tuple(bits[:k]))
    return len(prefixes)
