"""CNF formulas: the general representation and the 3-CNF special case.

Two layers live here:

* :class:`CNF` — general CNF over DIMACS-style signed integer literals.
  This is the shared formula representation that the lineage compiler
  (:mod:`repro.compile`) emits and the exact model counter
  (:mod:`repro.compile.sharpsat`) consumes.
* :class:`CNF3` / :class:`Clause` — the 3-CNF formulas of the ``#k3SAT``
  counting problem (Definition D.2): given a 3-CNF ``F`` over ``x_1..x_n``
  and ``1 <= k <= n``, count the assignments of ``x_1..x_k`` extendable to
  satisfying assignments of ``F``.  ``#k3SAT`` is SpanP-complete under
  parsimonious reductions (Köbler, Schöning, Torán; Prop. D.3), and is the
  source of Theorem 6.3.  :meth:`CNF3.to_cnf` bridges into the general
  representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterable, Iterator, Sequence


class CNF:
    """A general CNF formula over variables ``1..num_variables``.

    Literals are nonzero integers in DIMACS convention: ``v`` is the
    positive literal of variable ``v``, ``-v`` its negation.  Clauses are
    stored as sorted tuples with duplicate literals removed; tautological
    clauses (containing ``v`` and ``-v``) are dropped on insertion.  The
    empty clause is allowed and makes the formula unsatisfiable.

    The class is an incremental builder: the lineage compiler allocates
    variables with :meth:`new_variable` and appends clauses as it walks the
    database, then hands the finished formula to the model counter.
    """

    def __init__(
        self,
        num_variables: int = 0,
        clauses: Iterable[Sequence[int]] = (),
    ) -> None:
        if num_variables < 0:
            raise ValueError("num_variables must be >= 0")
        self._num_variables = num_variables
        self._clauses: list[tuple[int, ...]] = []
        for clause in clauses:
            self.add_clause(clause)

    # -- construction ------------------------------------------------------

    def new_variable(self) -> int:
        """Allocate and return a fresh variable index."""
        self._num_variables += 1
        return self._num_variables

    def new_variables(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variable indices."""
        return [self.new_variable() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append a clause (any iterable of nonzero literals).

        Duplicate literals collapse; a tautology is silently dropped; an
        empty clause is recorded as-is (falsum).
        """
        seen = set()
        for literal in literals:
            if not isinstance(literal, int) or literal == 0:
                raise ValueError("literals are nonzero integers; got %r" % (literal,))
            if abs(literal) > self._num_variables:
                raise ValueError(
                    "literal %d uses a variable beyond %d; allocate it "
                    "with new_variable() first" % (literal, self._num_variables)
                )
            seen.add(literal)
        if any(-literal in seen for literal in seen):
            return  # tautology
        self._clauses.append(tuple(sorted(seen, key=abs)))

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_exactly_one(self, variables: Sequence[int]) -> None:
        """Exactly one of ``variables`` is true: one at-least-one clause
        plus pairwise at-most-one clauses.

        This is the domain constraint of the lineage encoding: models of
        the exactly-one block over a null's indicator variables are in
        bijection with the choices of a value from its domain.
        """
        self.add_clause(variables)
        for left, right in combinations(variables, 2):
            self.add_clause((-left, -right))

    # -- inspection --------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def clauses(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._clauses)

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """``assignment[v-1]`` is the value of variable ``v``."""
        if len(assignment) < self._num_variables:
            raise ValueError(
                "assignment covers %d of %d variables"
                % (len(assignment), self._num_variables)
            )
        return all(
            any(
                assignment[abs(literal) - 1] == (literal > 0)
                for literal in clause
            )
            for clause in self._clauses
        )

    def __repr__(self) -> str:
        return "CNF(n=%d, clauses=%d)" % (
            self._num_variables,
            len(self._clauses),
        )


def count_models_brute(
    cnf: CNF, projection: Iterable[int] | None = None
) -> int:
    """Model count of a general CNF by exhaustive enumeration.

    With ``projection`` (a set of variables), counts the *distinct
    restrictions to the projection variables* of satisfying assignments —
    the projected model count.  Exponential; this is the ground truth the
    :mod:`repro.compile.sharpsat` engine is tested against.
    """
    if projection is None:
        return sum(
            1
            for bits in product((False, True), repeat=cnf.num_variables)
            if cnf.satisfied_by(bits)
        )
    show = sorted(set(projection))
    if any(v < 1 or v > cnf.num_variables for v in show):
        raise ValueError("projection variables must be in 1..num_variables")
    seen: set[tuple[bool, ...]] = set()
    for bits in product((False, True), repeat=cnf.num_variables):
        if cnf.satisfied_by(bits):
            seen.add(tuple(bits[v - 1] for v in show))
    return len(seen)


@dataclass(frozen=True)
class Clause:
    """A disjunction of exactly three literals.

    ``variables`` are 1-based indices; ``signs[i]`` is ``True`` for a
    positive literal.  Repeated variables inside a clause are allowed (as
    in the paper's reduction, which treats the clause positionally).
    """

    variables: tuple[int, int, int]
    signs: tuple[bool, bool, bool]

    def __post_init__(self) -> None:
        if len(self.variables) != 3 or len(self.signs) != 3:
            raise ValueError("3-CNF clauses have exactly three literals")
        if any(v < 1 for v in self.variables):
            raise ValueError("variables are 1-based positive indices")

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """``assignment[i-1]`` is the value of variable ``i``."""
        return any(
            assignment[variable - 1] == sign
            for variable, sign in zip(self.variables, self.signs)
        )

    def sign_tuple(self) -> tuple[int, int, int]:
        """The ``(a, b, c) ∈ {0,1}³`` naming the clause's relation in the
        Theorem 6.3 reduction (1 = positive literal)."""
        return tuple(int(sign) for sign in self.signs)  # type: ignore


class CNF3:
    """A 3-CNF formula over variables ``x_1..x_n``."""

    def __init__(self, num_variables: int, clauses: Iterable[Clause]) -> None:
        if num_variables < 1:
            raise ValueError("formulas need at least one variable")
        self._num_variables = num_variables
        self._clauses = tuple(clauses)
        for clause in self._clauses:
            if max(clause.variables) > num_variables:
                raise ValueError(
                    "clause %r uses a variable beyond x_%d"
                    % (clause, num_variables)
                )

    @property
    def num_variables(self) -> int:
        return self._num_variables

    @property
    def clauses(self) -> tuple[Clause, ...]:
        return self._clauses

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        return all(clause.satisfied_by(assignment) for clause in self._clauses)

    @classmethod
    def from_literals(
        cls, num_variables: int, clause_literals: Iterable[Sequence[int]]
    ) -> "CNF3":
        """Build from DIMACS-style literal triples (negative = negated)."""
        clauses = []
        for literals in clause_literals:
            if len(literals) != 3:
                raise ValueError("each clause needs exactly three literals")
            clauses.append(
                Clause(
                    variables=tuple(abs(l) for l in literals),  # type: ignore
                    signs=tuple(l > 0 for l in literals),  # type: ignore
                )
            )
        return cls(num_variables, clauses)

    def to_cnf(self) -> CNF:
        """The same formula as a general :class:`CNF` (shared representation)."""
        general = CNF(self._num_variables)
        for clause in self._clauses:
            general.add_clause(
                variable if sign else -variable
                for variable, sign in zip(clause.variables, clause.signs)
            )
        return general

    def __repr__(self) -> str:
        return "CNF3(n=%d, clauses=%d)" % (
            self._num_variables,
            len(self._clauses),
        )


def count_sat(formula: CNF3) -> int:
    """``#3SAT``: satisfying assignments, by exhaustive enumeration."""
    return sum(
        1
        for bits in product((False, True), repeat=formula.num_variables)
        if formula.satisfied_by(bits)
    )


def count_k3sat(formula: CNF3, k: int) -> int:
    """``#k3SAT(F, k)`` (Definition D.2): distinct prefixes ``x_1..x_k`` of
    satisfying assignments."""
    if not 1 <= k <= formula.num_variables:
        raise ValueError("k must satisfy 1 <= k <= n")
    prefixes: set[tuple[bool, ...]] = set()
    for bits in product((False, True), repeat=formula.num_variables):
        if formula.satisfied_by(bits):
            prefixes.add(tuple(bits[:k]))
    return len(prefixes)
