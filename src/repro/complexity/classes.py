"""The counting-complexity landscape of the paper, as queryable data.

Sections 5-6 situate the problems among FP, SpanL, #P, SpanP, GapP and
SPP.  This module encodes the classes, the known inclusions, and the
conditional statements ("#P = SpanP iff NP = UP", "SpanP ⊆ GapP implies
NP ⊆ SPP", ...) used by the paper, so that the classifier and the
documentation can cite them programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ComplexityClass:
    """A counting (or function) complexity class with provenance notes."""

    name: str
    description: str
    defined_in: str
    #: classes known to contain this one (immediate edges only).
    contained_in: tuple[str, ...] = field(default_factory=tuple)
    #: statements conditioning equality/collapse, as human-readable text.
    collapse_conditions: tuple[str, ...] = field(default_factory=tuple)


CLASSES: dict[str, ComplexityClass] = {
    cls.name: cls
    for cls in (
        ComplexityClass(
            name="FP",
            description="functions computable in deterministic polynomial "
            "time — the tractable side of every dichotomy in Table 1",
            defined_in="standard",
            contained_in=("#P", "SpanL"),
        ),
        ComplexityClass(
            name="SpanL",
            description="number of distinct outputs of a logspace "
            "NL-transducer; every SpanL problem has an FPRAS "
            "(Theorem 5.1, citing Arenas-Croquevielle-Jayaram-Riveros)",
            defined_in="Alvarez & Jenner 1993 [5]",
            contained_in=("#P",),
            collapse_conditions=("SpanL = #P implies NL = NP",),
        ),
        ComplexityClass(
            name="#P",
            description="number of accepting paths of a poly-time NTM; "
            "counting valuations always lies here (Section 3), counting "
            "completions does for Codd tables (Prop. B.1)",
            defined_in="Valiant 1979 [50]",
            contained_in=("SpanP", "GapP"),
        ),
        ComplexityClass(
            name="SpanP",
            description="number of distinct outputs of a poly-time NTM "
            "with output; the natural home of #Comp(q) for queries with "
            "NP model checking (Obs. 6.2, Thm. 6.4)",
            defined_in="Köbler, Schöning & Torán 1989 [34]",
            contained_in=(),
            collapse_conditions=(
                "#P = SpanP iff NP = UP",
                "SpanP ⊆ GapP implies NP ⊆ SPP",
            ),
        ),
        ComplexityClass(
            name="GapP",
            description="differences of two #P functions; used in the "
            "proof of Prop. 6.1",
            defined_in="Fenner, Fortnow & Kurtz 1994 [23]",
            contained_in=(),
        ),
        ComplexityClass(
            name="SPP",
            description="languages with gap 1/0; NP ⊆ SPP is the "
            "widely-disbelieved collapse that Prop. 6.1 conditions on",
            defined_in="Fenner, Fortnow & Kurtz 1994 [23]",
            contained_in=(),
        ),
    )
}


def is_known_subclass(lower: str, upper: str) -> bool:
    """Transitive closure of the recorded inclusion edges."""
    if lower not in CLASSES or upper not in CLASSES:
        raise KeyError("unknown class")
    frontier = [lower]
    seen = {lower}
    while frontier:
        current = frontier.pop()
        if current == upper:
            return True
        for parent in CLASSES[current].contained_in:
            if parent not in seen:
                seen.add(parent)
                frontier.append(parent)
    return False


def inclusion_chain() -> list[str]:
    """The paper's headline chain ``FP ⊆ SpanL ⊆ #P ⊆ SpanP``."""
    chain = ["FP", "SpanL", "#P", "SpanP"]
    for lower, upper in zip(chain, chain[1:]):
        assert is_known_subclass(lower, upper)
    return chain
