"""Complexity-theory substrate for Section 6 of the paper.

* :mod:`repro.complexity.cnf` — the shared general :class:`CNF`
  representation (emitted by the lineage compiler :mod:`repro.compile`,
  consumed by its exact model counter) plus the 3-CNF formulas of the
  SpanP-complete source problem ``#k3SAT`` (count assignments of the first
  ``k`` variables extendable to satisfying assignments; Def. D.2).
* :mod:`repro.complexity.classes` — the counting-class taxonomy the paper
  situates its problems in (FP ⊆ SpanL ⊆ #P ⊆ SpanP, GapP, SPP) with the
  known inclusions/collapse conditions as queryable data.
"""

from repro.complexity.cnf import (
    CNF,
    CNF3,
    Clause,
    count_k3sat,
    count_models_brute,
    count_sat,
)
from repro.complexity.classes import (
    CLASSES,
    ComplexityClass,
    inclusion_chain,
    is_known_subclass,
)

__all__ = [
    "CNF",
    "CNF3",
    "Clause",
    "count_k3sat",
    "count_models_brute",
    "count_sat",
    "CLASSES",
    "ComplexityClass",
    "inclusion_chain",
    "is_known_subclass",
]
