"""The paper's core objects: Boolean queries, patterns, and the dichotomies.

* :mod:`repro.core.query` — atoms, Boolean conjunctive queries (BCQs),
  self-join-free BCQs, unions of BCQs, negations, and arbitrary Boolean
  queries with user-supplied model checkers (for Section 6).
* :mod:`repro.core.patterns` — the *pattern* preorder of Definition 3.1 and
  closed-form detectors for the six patterns of Table 1.
* :mod:`repro.core.problems` — the eight problem variants
  (``#Val``/``#Comp`` x naive/Codd x uniform/non-uniform).
* :mod:`repro.core.classify` — the dichotomy classifier reproducing Table 1
  plus the approximability (Section 5) and beyond-#P (Section 6) results.
"""

from repro.core.query import (
    Atom,
    BCQ,
    BooleanQuery,
    Const,
    CustomQuery,
    Negation,
    UCQ,
    Var,
)
from repro.core.patterns import (
    PATTERN_BINARY,
    PATTERN_DOUBLE_EDGE,
    PATTERN_PATH,
    PATTERN_REPEAT,
    PATTERN_SHARED,
    PATTERN_UNARY,
    find_table1_patterns,
    is_pattern_of,
)
from repro.core.problems import (
    ALL_VARIANTS,
    Mode,
    ProblemVariant,
)
from repro.core.classify import (
    Approximability,
    ClassificationEntry,
    DichotomyReport,
    Tractability,
    classify,
)

__all__ = [
    "Atom",
    "BCQ",
    "BooleanQuery",
    "Const",
    "CustomQuery",
    "Negation",
    "UCQ",
    "Var",
    "PATTERN_BINARY",
    "PATTERN_DOUBLE_EDGE",
    "PATTERN_PATH",
    "PATTERN_REPEAT",
    "PATTERN_SHARED",
    "PATTERN_UNARY",
    "find_table1_patterns",
    "is_pattern_of",
    "ALL_VARIANTS",
    "Mode",
    "ProblemVariant",
    "Approximability",
    "ClassificationEntry",
    "DichotomyReport",
    "Tractability",
    "classify",
]
