"""The eight problem variants studied by the paper.

``#Val(q)`` / ``#Comp(q)`` each come in four flavors, crossing two input
restrictions (Section 2):

* **Codd** — every null occurs at most once (vs. naive tables);
* **uniform** — all nulls share one domain (vs. per-null domains).

The paper's notation maps to ours as::

    #Val(q)      = ProblemVariant(Mode.VALUATIONS,  codd=False, uniform=False)
    #ValCd(q)    = ProblemVariant(Mode.VALUATIONS,  codd=True,  uniform=False)
    #Valu(q)     = ProblemVariant(Mode.VALUATIONS,  codd=False, uniform=True)
    #ValuCd(q)   = ProblemVariant(Mode.VALUATIONS,  codd=True,  uniform=True)
    (same for #Comp with Mode.COMPLETIONS)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Mode(Enum):
    """What is being counted."""

    VALUATIONS = "val"
    COMPLETIONS = "comp"


@dataclass(frozen=True, order=True)
class ProblemVariant:
    """One of the eight counting problems (for a query fixed separately)."""

    mode: Mode
    codd: bool
    uniform: bool

    @property
    def paper_name(self) -> str:
        """The paper's notation, e.g. ``#ValuCd`` or ``#Comp``."""
        base = "#Val" if self.mode is Mode.VALUATIONS else "#Comp"
        if self.uniform:
            base += "u"
        if self.codd:
            base += "Cd"
        return base

    @classmethod
    def parse(cls, text: str) -> "ProblemVariant":
        """Parse strings like ``"val/uniform/codd"`` or ``"#CompuCd"``.

        Accepted slash form: ``{val|comp}[/uniform][/codd]`` in any order of
        the flags; accepted paper form: ``#Val``, ``#ValCd``, ``#Valu``,
        ``#ValuCd`` and the ``#Comp`` counterparts.
        """
        stripped = text.strip()
        if stripped.startswith("#"):
            for variant in ALL_VARIANTS:
                if variant.paper_name == stripped:
                    return variant
            raise ValueError("unknown problem name %r" % (text,))
        pieces = [p for p in stripped.lower().split("/") if p]
        if not pieces or pieces[0] not in ("val", "comp"):
            raise ValueError(
                "expected 'val' or 'comp' as the first component in %r"
                % (text,)
            )
        mode = Mode.VALUATIONS if pieces[0] == "val" else Mode.COMPLETIONS
        flags = set(pieces[1:])
        unknown = flags - {"uniform", "codd", "nonuniform", "naive"}
        if unknown:
            raise ValueError("unknown flags %s in %r" % (sorted(unknown), text))
        return cls(
            mode=mode, codd="codd" in flags, uniform="uniform" in flags
        )

    def __str__(self) -> str:
        return self.paper_name


#: All eight variants in Table-1 presentation order (valuations first,
#: non-uniform before uniform, naive before Codd).
ALL_VARIANTS: tuple[ProblemVariant, ...] = tuple(
    ProblemVariant(mode, codd, uniform)
    for mode in (Mode.VALUATIONS, Mode.COMPLETIONS)
    for codd in (False, True)
    for uniform in (False, True)
)

VAL = ProblemVariant(Mode.VALUATIONS, codd=False, uniform=False)
VAL_CODD = ProblemVariant(Mode.VALUATIONS, codd=True, uniform=False)
VAL_UNIFORM = ProblemVariant(Mode.VALUATIONS, codd=False, uniform=True)
VAL_UNIFORM_CODD = ProblemVariant(Mode.VALUATIONS, codd=True, uniform=True)
COMP = ProblemVariant(Mode.COMPLETIONS, codd=False, uniform=False)
COMP_CODD = ProblemVariant(Mode.COMPLETIONS, codd=True, uniform=False)
COMP_UNIFORM = ProblemVariant(Mode.COMPLETIONS, codd=False, uniform=True)
COMP_UNIFORM_CODD = ProblemVariant(Mode.COMPLETIONS, codd=True, uniform=True)
