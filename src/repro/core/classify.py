"""The dichotomy classifier: Table 1 plus Sections 5-6 as a decision
procedure.

Given a variable-only sjfBCQ ``q``, :func:`classify` determines, for each of
the eight problem variants, the paper's verdict on:

* exact complexity (FP / #P-complete / #P-hard / open),
* approximability (FPRAS exists / none unless NP = RP / open),
* membership (always-#P for valuations; SpanP and the Prop. 6.1 caveat for
  completions over naive tables),

together with the witnessing hard patterns.  Every rule cites the result it
implements, so the classifier doubles as an executable index of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.patterns import find_table1_patterns
from repro.core.problems import ALL_VARIANTS, Mode, ProblemVariant
from repro.core.query import BCQ


class Tractability(Enum):
    """Exact-counting verdicts of Table 1."""

    FP = "FP"
    SHARP_P_COMPLETE = "#P-complete"
    #: hard for #P, but membership in #P is *not* claimed (naive-table
    #: completion counting; see Section 6).
    SHARP_P_HARD = "#P-hard"
    OPEN = "open"

    @property
    def is_tractable(self) -> bool:
        return self is Tractability.FP

    @property
    def is_hard(self) -> bool:
        return self in (
            Tractability.SHARP_P_COMPLETE,
            Tractability.SHARP_P_HARD,
        )


class Approximability(Enum):
    """Approximate-counting verdicts of Section 5."""

    EXACT_FP = "exact (FP)"
    FPRAS = "FPRAS"
    NO_FPRAS_UNLESS_NP_EQ_RP = "no FPRAS unless NP = RP"
    OPEN = "open"


@dataclass(frozen=True)
class ClassificationEntry:
    """Verdicts for one problem variant of one query."""

    variant: ProblemVariant
    tractability: Tractability
    approximability: Approximability
    #: display names of Table-1 patterns found in ``q`` that witness
    #: hardness for this variant (empty when tractable/open).
    witnesses: tuple[str, ...]
    #: complexity-class membership notes (e.g. "in #P", "in SpanP").
    membership: str
    #: the result(s) of the paper this entry instantiates.
    citations: tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class DichotomyReport:
    """Full classification of a query across all eight variants."""

    query: BCQ
    patterns: dict[str, bool]
    entries: dict[ProblemVariant, ClassificationEntry]

    def entry(self, variant: ProblemVariant) -> ClassificationEntry:
        return self.entries[variant]

    def to_table(self) -> str:
        """Render an ASCII table in the layout of the paper's Table 1."""
        lines = ["query: %r" % (self.query,)]
        present = sorted(name for name, found in self.patterns.items() if found)
        lines.append("patterns present: %s" % (", ".join(present) or "none"))
        header = "%-12s %-16s %-26s %s" % (
            "problem",
            "exact",
            "approximate",
            "witnesses",
        )
        lines.append(header)
        lines.append("-" * len(header))
        for variant in ALL_VARIANTS:
            entry = self.entries[variant]
            lines.append(
                "%-12s %-16s %-26s %s"
                % (
                    variant.paper_name,
                    entry.tractability.value,
                    entry.approximability.value,
                    ", ".join(entry.witnesses) or "-",
                )
            )
        return "\n".join(lines)


def _require_sjf(query: BCQ) -> None:
    if not query.is_self_join_free or not query.is_variable_only:
        raise ValueError(
            "the dichotomies apply to variable-only self-join-free BCQs; "
            "got %r" % (query,)
        )


def _witnesses(patterns: dict[str, bool], names: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(name for name in names if patterns[name])


def classify(query: BCQ) -> DichotomyReport:
    """Classify ``query`` per Table 1 and Sections 5-6 of the paper."""
    _require_sjf(query)
    patterns = find_table1_patterns(query)
    entries: dict[ProblemVariant, ClassificationEntry] = {}

    for variant in ALL_VARIANTS:
        if variant.mode is Mode.VALUATIONS:
            entries[variant] = _classify_valuations(variant, patterns)
        else:
            entries[variant] = _classify_completions(variant, patterns)

    return DichotomyReport(query=query, patterns=patterns, entries=entries)


def _classify_valuations(
    variant: ProblemVariant, patterns: dict[str, bool]
) -> ClassificationEntry:
    """Columns 1-2 of Table 1 (Theorems 3.6, 3.7, 3.9; Prop. 3.11)."""
    membership = "in #P (guess a valuation, check q; Section 3.1)"
    if not variant.uniform and not variant.codd:
        # Theorem 3.6: hard iff R(x,x) or R(x)∧S(x).
        names = ("R(x,x)", "R(x)∧S(x)")
        witnesses = _witnesses(patterns, names)
        hard = bool(witnesses)
        return ClassificationEntry(
            variant=variant,
            tractability=(
                Tractability.SHARP_P_COMPLETE if hard else Tractability.FP
            ),
            approximability=(
                Approximability.FPRAS if hard else Approximability.EXACT_FP
            ),
            witnesses=witnesses,
            membership=membership,
            citations=("Theorem 3.6", "Corollary 5.3"),
        )
    if not variant.uniform and variant.codd:
        # Theorem 3.7: hard iff R(x)∧S(x).
        witnesses = _witnesses(patterns, ("R(x)∧S(x)",))
        hard = bool(witnesses)
        return ClassificationEntry(
            variant=variant,
            tractability=(
                Tractability.SHARP_P_COMPLETE if hard else Tractability.FP
            ),
            approximability=(
                Approximability.FPRAS if hard else Approximability.EXACT_FP
            ),
            witnesses=witnesses,
            membership=membership,
            citations=("Theorem 3.7", "Corollary 5.3"),
        )
    if variant.uniform and not variant.codd:
        # Theorem 3.9: hard iff R(x,x) or R(x)∧S(x,y)∧T(y) or R(x,y)∧S(x,y).
        names = ("R(x,x)", "R(x)∧S(x,y)∧T(y)", "R(x,y)∧S(x,y)")
        witnesses = _witnesses(patterns, names)
        hard = bool(witnesses)
        return ClassificationEntry(
            variant=variant,
            tractability=(
                Tractability.SHARP_P_COMPLETE if hard else Tractability.FP
            ),
            approximability=(
                Approximability.FPRAS if hard else Approximability.EXACT_FP
            ),
            witnesses=witnesses,
            membership=membership,
            citations=("Theorem 3.9", "Corollary 5.3"),
        )
    # Uniform Codd tables: the one case the paper leaves open.  The path
    # pattern is known hard (Prop. 3.11).  Two FP sources apply a fortiori,
    # since uniform Codd inputs are special cases of both restrictions:
    # queries without R(x)∧S(x) (Theorem 3.7 on Codd tables) and queries
    # with none of the three uniform-naive patterns (Theorem 3.9).
    # Everything in between is open.
    witnesses = _witnesses(patterns, ("R(x)∧S(x,y)∧T(y)",))
    if witnesses:
        tractability = Tractability.SHARP_P_COMPLETE
        approximability = Approximability.FPRAS
    elif not patterns["R(x)∧S(x)"] or not any(
        patterns[name]
        for name in ("R(x,x)", "R(x)∧S(x,y)∧T(y)", "R(x,y)∧S(x,y)")
    ):
        tractability = Tractability.FP
        approximability = Approximability.EXACT_FP
    else:
        tractability = Tractability.OPEN
        approximability = Approximability.FPRAS  # Cor. 5.3 regardless
    return ClassificationEntry(
        variant=variant,
        tractability=tractability,
        approximability=approximability,
        witnesses=witnesses,
        membership=membership,
        citations=("Prop. 3.11", "Theorem 3.9", "Corollary 5.3"),
    )


def _classify_completions(
    variant: ProblemVariant, patterns: dict[str, bool]
) -> ClassificationEntry:
    """Columns 3-4 of Table 1 (Theorems 4.3, 4.4, 4.6, 4.7; Section 5.2)."""
    if variant.codd:
        membership = "in #P (Prop. B.1: matching-based certificates)"
    else:
        membership = (
            "in SpanP (Obs. 6.2); not in #P for some q unless NP ⊆ SPP "
            "(Prop. 6.1)"
        )
    if not variant.uniform:
        # Theorems 4.3 / 4.4: hard for every sjfBCQ, already via R(x).
        witnesses = _witnesses(patterns, ("R(x)",))
        return ClassificationEntry(
            variant=variant,
            tractability=(
                Tractability.SHARP_P_COMPLETE
                if variant.codd
                else Tractability.SHARP_P_HARD
            ),
            approximability=Approximability.NO_FPRAS_UNLESS_NP_EQ_RP,
            witnesses=witnesses,
            membership=membership,
            citations=("Theorem 4.3", "Theorem 4.4", "Theorem 5.5"),
        )
    # Uniform: Theorems 4.6 / 4.7 — hard iff R(x,x) or R(x,y) is a pattern
    # (equivalently: some atom of arity >= 2).
    names = ("R(x,x)", "R(x,y)")
    witnesses = _witnesses(patterns, names)
    hard = bool(witnesses)
    if not hard:
        tractability = Tractability.FP
        approximability = Approximability.EXACT_FP
    elif variant.codd:
        tractability = Tractability.SHARP_P_COMPLETE
        # Open question of Section 5.2: FPRAS over uniform Codd tables.
        approximability = Approximability.OPEN
    else:
        tractability = Tractability.SHARP_P_HARD
        approximability = Approximability.NO_FPRAS_UNLESS_NP_EQ_RP
    return ClassificationEntry(
        variant=variant,
        tractability=tractability,
        approximability=approximability,
        witnesses=witnesses,
        membership=membership,
        citations=("Theorem 4.6", "Theorem 4.7", "Theorem 5.7"),
    )
