"""Boolean queries: atoms, (sjf)BCQs, unions, negations, custom queries.

Following Section 2 of the paper, a Boolean conjunctive query is an
existentially-quantified conjunction of relational atoms; quantifiers are
left implicit.  Variables are :class:`Var` objects (constructed from plain
strings for convenience) and constants inside queries are wrapped in
:class:`Const` so the two can never be confused.

The paper's dichotomies concern *self-join-free* BCQs (no relation name used
twice); Section 5 needs unions of BCQs, and Section 6 needs negations of
BCQs and arbitrary fixed Boolean queries whose model checking is in NP —
:class:`CustomQuery` covers those by carrying a Python decision procedure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Hashable, Iterable, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Database


class Var:
    """A query variable, identified by name."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other._name == self._name

    def __hash__(self) -> int:
        return hash(("repro.Var", self._name))

    def __repr__(self) -> str:
        return self._name

    def __lt__(self, other: "Var") -> bool:
        if not isinstance(other, Var):
            return NotImplemented
        return self._name < other._name


class Const:
    """A constant appearing inside a query atom."""

    __slots__ = ("_value",)

    def __init__(self, value: Hashable) -> None:
        self._value = value

    @property
    def value(self) -> Hashable:
        return self._value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("repro.Const", self._value))

    def __repr__(self) -> str:
        return repr(self._value)


QueryTerm = Var | Const


def _coerce_term(term: QueryTerm | str) -> QueryTerm:
    """Strings are accepted as variable names for writing queries tersely."""
    if isinstance(term, str):
        return Var(term)
    if isinstance(term, (Var, Const)):
        return term
    raise TypeError(
        "query terms must be Var, Const or str (variable name); got %r"
        % (term,)
    )


class Atom:
    """A relational atom ``R(t_1, ..., t_k)`` in a query body."""

    __slots__ = ("_relation", "_terms")

    def __init__(
        self, relation: str, terms: Iterable[QueryTerm | str]
    ) -> None:
        if not relation:
            raise ValueError("relation name must be non-empty")
        coerced = tuple(_coerce_term(term) for term in terms)
        if not coerced:
            raise ValueError(
                "atoms must have arity >= 1 (paper assumption, Section 2)"
            )
        self._relation = relation
        self._terms = coerced

    @property
    def relation(self) -> str:
        return self._relation

    @property
    def terms(self) -> tuple[QueryTerm, ...]:
        return self._terms

    @property
    def arity(self) -> int:
        return len(self._terms)

    def variables(self) -> list[Var]:
        """Distinct variables in order of first occurrence."""
        seen: list[Var] = []
        for term in self._terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return seen

    def occurrence_count(self, variable: Var) -> int:
        """Number of positions of ``variable`` in this atom."""
        return sum(1 for term in self._terms if term == variable)

    def has_repeated_variable(self) -> bool:
        return any(self.occurrence_count(v) >= 2 for v in self.variables())

    def is_variable_only(self) -> bool:
        return all(isinstance(term, Var) for term in self._terms)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and other._relation == self._relation
            and other._terms == self._terms
        )

    def __hash__(self) -> int:
        return hash((self._relation, self._terms))

    def __repr__(self) -> str:
        return "%s(%s)" % (
            self._relation,
            ",".join(repr(term) for term in self._terms),
        )


class BooleanQuery(ABC):
    """A Boolean query: something a complete database satisfies or not.

    Concrete query classes either carry enough syntax for the generic
    evaluator (:mod:`repro.eval`) or, for :class:`CustomQuery`, an explicit
    decision procedure.  The three semantic flags mirror the hypotheses of
    Prop. 5.2 (monotone + bounded minimal models + feasible model checking
    implies ``#Val`` in SpanL, hence FPRAS).
    """

    @property
    @abstractmethod
    def relations(self) -> frozenset[str]:
        """``sig(q)``: the relation names occurring in the query."""

    @property
    def is_monotone(self) -> bool:
        """True when ``D ⊆ D'`` and ``D |= q`` imply ``D' |= q``."""
        return False

    @property
    def minimal_model_bound(self) -> int | None:
        """A bound ``C_q`` on minimal-model size, or ``None`` if unbounded."""
        return None


class BCQ(BooleanQuery):
    """A Boolean conjunctive query (implicit existential quantification)."""

    def __init__(self, atoms: Sequence[Atom]) -> None:
        atom_tuple = tuple(atoms)
        if not atom_tuple:
            raise ValueError(
                "BCQs must have at least one atom (paper assumption)"
            )
        self._atoms = atom_tuple

    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(atom.relation for atom in self._atoms)

    @property
    def is_self_join_free(self) -> bool:
        """No two atoms share a relation name (sjfBCQ, Section 2)."""
        return len(self.relations) == len(self._atoms)

    @property
    def is_variable_only(self) -> bool:
        """True when no constant occurs in any atom (the paper's setting)."""
        return all(atom.is_variable_only() for atom in self._atoms)

    def variables(self) -> list[Var]:
        """Distinct variables across all atoms, in first-occurrence order."""
        seen: list[Var] = []
        for atom in self._atoms:
            for variable in atom.variables():
                if variable not in seen:
                    seen.append(variable)
        return seen

    def occurrence_count(self, variable: Var) -> int:
        return sum(atom.occurrence_count(variable) for atom in self._atoms)

    def atoms_containing(self, variable: Var) -> list[Atom]:
        return [a for a in self._atoms if a.occurrence_count(variable) > 0]

    @property
    def is_monotone(self) -> bool:
        return True

    @property
    def minimal_model_bound(self) -> int | None:
        # A satisfying hom image uses at most one fact per atom.
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        # Syntactic equality (atom order matters); use is_pattern_of for
        # the semantic preorder.
        return isinstance(other, BCQ) and other._atoms == self._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __repr__(self) -> str:
        return " ∧ ".join(repr(atom) for atom in self._atoms)


def sjf_bcq(atoms: Sequence[Atom]) -> BCQ:
    """Build a BCQ and check it is self-join-free and variable-only.

    The dichotomy theorems assume both; this constructor makes the
    assumption explicit at build time.
    """
    query = BCQ(atoms)
    if not query.is_self_join_free:
        raise ValueError("query is not self-join-free: %r" % (query,))
    if not query.is_variable_only:
        raise ValueError(
            "the paper's sjfBCQs contain variables only: %r" % (query,)
        )
    return query


class UCQ(BooleanQuery):
    """A union (disjunction) of Boolean conjunctive queries (Section 5.1)."""

    def __init__(self, disjuncts: Sequence[BCQ]) -> None:
        disjunct_tuple = tuple(disjuncts)
        if not disjunct_tuple:
            raise ValueError("UCQs must have at least one disjunct")
        self._disjuncts = disjunct_tuple

    @property
    def disjuncts(self) -> tuple[BCQ, ...]:
        return self._disjuncts

    @property
    def relations(self) -> frozenset[str]:
        names: frozenset[str] = frozenset()
        for disjunct in self._disjuncts:
            names |= disjunct.relations
        return names

    @property
    def is_monotone(self) -> bool:
        return True

    @property
    def minimal_model_bound(self) -> int | None:
        return max(len(d.atoms) for d in self._disjuncts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UCQ) and other._disjuncts == self._disjuncts

    def __hash__(self) -> int:
        return hash(self._disjuncts)

    def __repr__(self) -> str:
        return " ∨ ".join("(%r)" % (d,) for d in self._disjuncts)


class Negation(BooleanQuery):
    """The negation ``¬q`` of a Boolean query (Theorem 6.3)."""

    def __init__(self, inner: BooleanQuery) -> None:
        self._inner = inner

    @property
    def inner(self) -> BooleanQuery:
        return self._inner

    @property
    def relations(self) -> frozenset[str]:
        return self._inner.relations

    @property
    def is_monotone(self) -> bool:
        return False  # negation of a monotone query is antitone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Negation) and other._inner == self._inner

    def __hash__(self) -> int:
        return hash(("repro.Negation", self._inner))

    def __repr__(self) -> str:
        return "¬(%r)" % (self._inner,)


class CustomQuery(BooleanQuery):
    """A fixed Boolean query given by an arbitrary decision procedure.

    Used for Section 6: queries whose model checking is in NP but which are
    not (U)CQs — e.g. the ∃SO Hamiltonian-subset query of Theorem 6.4.
    """

    def __init__(
        self,
        name: str,
        relations: Iterable[str],
        decide: Callable[["Database"], bool],
        monotone: bool = False,
        minimal_model_bound: int | None = None,
    ) -> None:
        self._name = name
        self._relations = frozenset(relations)
        self._decide = decide
        self._monotone = monotone
        self._bound = minimal_model_bound

    @property
    def relations(self) -> frozenset[str]:
        return self._relations

    @property
    def is_monotone(self) -> bool:
        return self._monotone

    @property
    def minimal_model_bound(self) -> int | None:
        return self._bound

    def decide(self, database: "Database") -> bool:
        """Run the model-checking procedure on a complete database."""
        return bool(self._decide(database))

    def __repr__(self) -> str:
        return "CustomQuery(%s)" % (self._name,)
