"""The pattern preorder on sjfBCQs (Definition 3.1) and Table-1 detectors.

``q'`` is a *pattern* of ``q`` when ``q'`` can be produced from ``q`` by
repeatedly: deleting an atom, deleting a variable occurrence (never the last
one of an atom), renaming a relation to a fresh one, renaming a variable to a
fresh one, and reordering the variables inside an atom.

Two key observations make the relation decidable by simple search:

* relation names are irrelevant (they can always be renamed), so only the
  *multiset structure* of atoms matters;
* the operations never merge two variables and never split the occurrences
  of one variable under two names, so a derivation induces an injection from
  the variables of ``q'`` into the variables of ``q`` and an injection from
  the atoms of ``q'`` into the atoms of ``q``.

Hence ``q'`` is a pattern of ``q`` iff there are injections ``f`` (atoms)
and ``g`` (variables) such that for every atom ``A'`` of ``q'`` and variable
``v`` of ``A'``, the occurrence count of ``v`` in ``A'`` is at most the
occurrence count of ``g(v)`` in ``f(A')``.  This is what
:func:`is_pattern_of` decides (exactly; both queries are fixed and small).

The six concrete patterns of Table 1 also get direct detectors, which the
test suite cross-validates against the general procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.query import Atom, BCQ, Var

# -- The canonical patterns of Table 1 -------------------------------------

#: ``R(x)`` — relevant to #Comp in the non-uniform setting (Prop. 4.2);
#: a pattern of *every* sjfBCQ.
PATTERN_UNARY = BCQ([Atom("R", ["x"])])

#: ``R(x, x)`` — hard for #Val on naive tables (Prop. 3.4) and for #Comp in
#: the uniform setting (Prop. 4.5).
PATTERN_REPEAT = BCQ([Atom("R", ["x", "x"])])

#: ``R(x, y)`` — hard for #Comp in the uniform setting (Prop. 4.5).
PATTERN_BINARY = BCQ([Atom("R", ["x", "y"])])

#: ``R(x) ∧ S(x)`` — hard for #Val, even on Codd tables (Prop. 3.5).
PATTERN_SHARED = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])

#: ``R(x) ∧ S(x, y) ∧ T(y)`` — hard for #Valu, even on Codd tables
#: (Props. 3.8 and 3.11).
PATTERN_PATH = BCQ(
    [Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])]
)

#: ``R(x, y) ∧ S(x, y)`` — hard for #Valu on naive tables (Prop. 3.8).
PATTERN_DOUBLE_EDGE = BCQ(
    [Atom("R", ["x", "y"]), Atom("S", ["x", "y"])]
)

_TABLE1_PATTERNS: dict[str, BCQ] = {
    "R(x)": PATTERN_UNARY,
    "R(x,x)": PATTERN_REPEAT,
    "R(x,y)": PATTERN_BINARY,
    "R(x)∧S(x)": PATTERN_SHARED,
    "R(x)∧S(x,y)∧T(y)": PATTERN_PATH,
    "R(x,y)∧S(x,y)": PATTERN_DOUBLE_EDGE,
}


def _check_sjf_variable_only(query: BCQ, role: str) -> None:
    if not query.is_self_join_free or not query.is_variable_only:
        raise ValueError(
            "%s must be a variable-only self-join-free BCQ: %r"
            % (role, query)
        )


def is_pattern_of(pattern: BCQ, query: BCQ) -> bool:
    """Decide whether ``pattern`` is a pattern of ``query`` (Def. 3.1).

    Exact backtracking search for compatible atom/variable injections.
    Both inputs must be variable-only sjfBCQs (the paper's setting).
    """
    _check_sjf_variable_only(pattern, "pattern")
    _check_sjf_variable_only(query, "query")

    pattern_atoms = list(pattern.atoms)
    query_atoms = list(query.atoms)
    if len(pattern_atoms) > len(query_atoms):
        return False

    def extendable(
        index: int,
        variable_map: dict[Var, Var],
        used_variables: frozenset[Var],
        used_atoms: frozenset[int],
    ) -> bool:
        if index == len(pattern_atoms):
            return True
        pattern_atom = pattern_atoms[index]
        pattern_vars = pattern_atom.variables()
        for query_position, query_atom in enumerate(query_atoms):
            if query_position in used_atoms:
                continue
            if query_atom.arity < pattern_atom.arity:
                continue
            # Pattern variables mapped by earlier atoms must already have
            # enough occurrences in this query atom.
            mapped_ok = all(
                query_atom.occurrence_count(variable_map[v])
                >= pattern_atom.occurrence_count(v)
                for v in pattern_vars
                if v in variable_map
            )
            if not mapped_ok:
                continue
            unmapped = [v for v in pattern_vars if v not in variable_map]
            candidates = [
                v for v in query_atom.variables() if v not in used_variables
            ]
            if len(candidates) < len(unmapped):
                continue
            # permutations(..., 0) yields one empty assignment, so the
            # fully-mapped case is handled by the same loop.
            for assignment in permutations(candidates, len(unmapped)):
                if any(
                    query_atom.occurrence_count(target)
                    < pattern_atom.occurrence_count(variable)
                    for variable, target in zip(unmapped, assignment)
                ):
                    continue
                extended_map = dict(variable_map)
                extended_map.update(zip(unmapped, assignment))
                if extendable(
                    index + 1,
                    extended_map,
                    used_variables | set(assignment),
                    used_atoms | {query_position},
                ):
                    return True
        return False

    return extendable(0, {}, frozenset(), frozenset())


@dataclass(frozen=True)
class PatternEmbedding:
    """A witness that ``pattern`` is a pattern of ``query`` (Def. 3.1).

    * ``atom_map[k]`` — index of the query atom that pattern atom ``k``
      derives from;
    * ``variable_map`` — injective pattern-variable -> query-variable map;
    * ``position_maps[k]`` — injective map from the positions of pattern
      atom ``k`` to positions of its query atom, consistent with
      ``variable_map`` (the *kept* variable occurrences; all other query
      positions were "deleted" in the derivation).

    This is exactly the data the Lemma 3.3 / 4.1 database transformations
    need (see :mod:`repro.reductions.pattern`).
    """

    atom_map: tuple[int, ...]
    variable_map: dict[Var, Var]
    position_maps: tuple[dict[int, int], ...]


def find_pattern_embedding(
    pattern: BCQ, query: BCQ
) -> PatternEmbedding | None:
    """Return one pattern embedding, or ``None`` when not a pattern.

    Same search as :func:`is_pattern_of`, additionally recording which
    query-atom positions carry each kept pattern occurrence.
    """
    _check_sjf_variable_only(pattern, "pattern")
    _check_sjf_variable_only(query, "query")

    pattern_atoms = list(pattern.atoms)
    query_atoms = list(query.atoms)
    if len(pattern_atoms) > len(query_atoms):
        return None

    def positions_of(atom: Atom, variable: Var) -> list[int]:
        return [i for i, term in enumerate(atom.terms) if term == variable]

    def extendable(
        index: int,
        variable_map: dict[Var, Var],
        used_variables: frozenset[Var],
        used_atoms: frozenset[int],
        atom_map: tuple[int, ...],
    ) -> PatternEmbedding | None:
        if index == len(pattern_atoms):
            position_maps = []
            for k, query_index in enumerate(atom_map):
                pattern_atom = pattern_atoms[k]
                query_atom = query_atoms[query_index]
                mapping: dict[int, int] = {}
                for variable in pattern_atom.variables():
                    source = positions_of(pattern_atom, variable)
                    target = positions_of(query_atom, variable_map[variable])
                    for src, dst in zip(source, target):
                        mapping[src] = dst
                position_maps.append(mapping)
            return PatternEmbedding(
                atom_map=atom_map,
                variable_map=dict(variable_map),
                position_maps=tuple(position_maps),
            )
        pattern_atom = pattern_atoms[index]
        pattern_vars = pattern_atom.variables()
        for query_position, query_atom in enumerate(query_atoms):
            if query_position in used_atoms:
                continue
            if query_atom.arity < pattern_atom.arity:
                continue
            if not all(
                query_atom.occurrence_count(variable_map[v])
                >= pattern_atom.occurrence_count(v)
                for v in pattern_vars
                if v in variable_map
            ):
                continue
            unmapped = [v for v in pattern_vars if v not in variable_map]
            candidates = [
                v for v in query_atom.variables() if v not in used_variables
            ]
            if len(candidates) < len(unmapped):
                continue
            for assignment in permutations(candidates, len(unmapped)):
                if any(
                    query_atom.occurrence_count(target)
                    < pattern_atom.occurrence_count(variable)
                    for variable, target in zip(unmapped, assignment)
                ):
                    continue
                extended_map = dict(variable_map)
                extended_map.update(zip(unmapped, assignment))
                witness = extendable(
                    index + 1,
                    extended_map,
                    used_variables | set(assignment),
                    used_atoms | {query_position},
                    atom_map + (query_position,),
                )
                if witness is not None:
                    return witness
        return None

    return extendable(0, {}, frozenset(), frozenset(), ())


# -- Closed-form detectors for the six Table-1 patterns ---------------------


def has_repeated_variable_atom(query: BCQ) -> bool:
    """``R(x,x)`` is a pattern of ``q`` iff some atom repeats a variable."""
    return any(atom.has_repeated_variable() for atom in query.atoms)


def has_atom_with_two_variables(query: BCQ) -> bool:
    """``R(x,y)`` is a pattern iff some atom has two *distinct* variables."""
    return any(len(atom.variables()) >= 2 for atom in query.atoms)


def has_shared_variable(query: BCQ) -> bool:
    """``R(x) ∧ S(x)`` is a pattern iff two atoms share a variable."""
    atoms = query.atoms
    for i in range(len(atoms)):
        vars_i = set(atoms[i].variables())
        for j in range(i + 1, len(atoms)):
            if vars_i & set(atoms[j].variables()):
                return True
    return False


def has_path_pattern(query: BCQ) -> bool:
    """``R(x) ∧ S(x,y) ∧ T(y)`` is a pattern iff there are three distinct
    atoms ``A, B, C`` and distinct variables ``x != y`` with ``x`` in
    ``A ∩ B`` and ``y`` in ``B ∩ C``."""
    atoms = query.atoms
    n = len(atoms)
    if n < 3:
        return False
    variable_sets = [set(atom.variables()) for atom in atoms]
    for b in range(n):
        for a in range(n):
            if a == b:
                continue
            shared_ab = variable_sets[a] & variable_sets[b]
            if not shared_ab:
                continue
            for c in range(n):
                if c in (a, b):
                    continue
                shared_bc = variable_sets[b] & variable_sets[c]
                for x in shared_ab:
                    for y in shared_bc:
                        if x != y:
                            return True
    return False


def has_double_edge_pattern(query: BCQ) -> bool:
    """``R(x,y) ∧ S(x,y)`` is a pattern iff two atoms share two distinct
    variables."""
    atoms = query.atoms
    for i in range(len(atoms)):
        vars_i = set(atoms[i].variables())
        for j in range(i + 1, len(atoms)):
            if len(vars_i & set(atoms[j].variables())) >= 2:
                return True
    return False


def find_table1_patterns(query: BCQ) -> dict[str, bool]:
    """Which of the six Table-1 patterns ``q`` contains, by display name.

    Decided with the general Definition-3.1 procedure; the detectors above
    are the fast paths and are cross-checked in the tests.
    """
    return {
        name: is_pattern_of(pattern, query)
        for name, pattern in _TABLE1_PATTERNS.items()
    }
