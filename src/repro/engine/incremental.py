"""Delta-aware circuit derivation: answer updated instances from ancestors.

An instance built via ``db.apply(delta)`` carries provenance — its parent
instance and the delta between them.  When the engine misses the circuit
store on such an instance, this module walks the ancestor chain
(:func:`delta_chain`), asks the cache for the nearest compiled ancestor
(:meth:`~repro.engine.cache.CountCache.get_ancestor_circuit`), and derives
the child circuit from it:

* a **resolution-only** delta suffix (resolve-null, restrict-domain) is
  applied by *conditioning* — one linear program rewrite per delta, no
  recompilation (``#Val`` circuits only; projected ``#Comp`` circuits sum
  choice variables out, so conditioning them is unsound by construction);
* any suffix containing an **insert/delete** recompiles the child
  componentwise, splicing every clause component unchanged since the
  ancestor from the cache's component store.

The derived circuit is installed as an ordinary store entry whose parent
link makes ``--cache-mb`` eviction drop children with their parents.
Answers are bit-identical to from-scratch compilation either way.
"""

from __future__ import annotations

from typing import Any

from repro.core.query import BooleanQuery
from repro.db.deltas import resolution_only
from repro.db.incomplete import IncompleteDatabase
from repro.engine.fingerprint import fingerprint_instance
from repro.obs import event as _event, incr as _incr, span as _span

#: Longest provenance chain the derivation will walk.  Beyond this a
#: fresh compile is cheaper than replaying the chain (and an unbounded
#: walk could loop on pathological hand-built provenance).
MAX_CHAIN_DEPTH = 64


def delta_chain(
    db: IncompleteDatabase,
) -> list[tuple[IncompleteDatabase, list]]:
    """Ancestors of ``db`` with the deltas leading back down to ``db``.

    Returns ``[(parent, [d_k]), (grandparent, [d_{k-1}, d_k]), ...]``,
    nearest ancestor first; each delta list replays that ancestor forward
    into ``db``.  Empty when ``db`` has no provenance.
    """
    chain: list[tuple[IncompleteDatabase, list]] = []
    suffix: list = []
    node = db
    while len(chain) < MAX_CHAIN_DEPTH:
        parent = getattr(node, "parent", None)
        delta = getattr(node, "delta", None)
        if parent is None or delta is None:
            break
        suffix.insert(0, delta)
        chain.append((parent, list(suffix)))
        node = parent
    return chain


def cached_ancestor(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    kind: str,
    circuits: Any,
) -> str | None:
    """Fingerprint of the nearest cached ancestor circuit, if any.

    A statistics-free peek (``has_circuit``) for routing decisions — the
    batch engine uses it to keep derivable jobs in the parent process
    instead of shipping them to a compile worker.
    """
    has_circuit = getattr(circuits, "has_circuit", None)
    if has_circuit is None:
        return None
    for ancestor, _deltas in delta_chain(db):
        fingerprint = fingerprint_instance(ancestor, query, kind)
        if fingerprint is not None and has_circuit(fingerprint):
            return fingerprint
    return None


def derive_instance_circuit(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    kind: str,
    circuits: Any,
    fingerprint: str | None = None,
) -> Any | None:
    """Derive the circuit of a delta-derived instance from a cached ancestor.

    Call on a circuit-store miss for ``db``.  Walks the provenance chain,
    takes the nearest cached ancestor, and either conditions it (val,
    resolution-only suffix) or recompiles the child componentwise against
    the cache's component store.  The result is installed into
    ``circuits`` under ``fingerprint`` with its parent link and returned;
    ``None`` when ``db`` has no provenance, no ancestor is cached, or the
    cache lacks the ancestor API (worker-side one-slot stores).
    """
    get_ancestor = getattr(circuits, "get_ancestor_circuit", None)
    if get_ancestor is None:
        return None
    chain = delta_chain(db)
    if not chain:
        return None
    ancestry = []
    deltas_of: dict[str, list] = {}
    for ancestor, deltas in chain:
        ancestor_fingerprint = fingerprint_instance(ancestor, query, kind)
        if ancestor_fingerprint is None:
            return None
        ancestry.append(ancestor_fingerprint)
        deltas_of[ancestor_fingerprint] = deltas
    found = get_ancestor(ancestry)
    if found is None:
        return None
    ancestor_fingerprint, circuit = found
    deltas = deltas_of[ancestor_fingerprint]
    conditionable = kind == "val" and all(map(resolution_only, deltas))
    with _span(
        "delta.derive",
        kind=kind,
        mode="condition" if conditionable else "splice",
        chain=len(deltas),
    ):
        if conditionable:
            for delta in deltas:
                circuit = circuit.condition(delta)
        else:
            from repro.compile.backend import (
                CompletionCircuit,
                ValuationCircuit,
            )

            if kind == "comp":
                circuit = CompletionCircuit.compile_componentwise(
                    db, query, components=circuits
                )
            else:
                circuit = ValuationCircuit.compile_componentwise(
                    db, query, components=circuits
                )
    _incr("delta.derivations")
    _event(
        "delta.derived",
        kind=kind,
        mode="condition" if conditionable else "splice",
        chain=len(deltas),
        ancestor=ancestor_fingerprint[:12],
    )
    if fingerprint is None:
        fingerprint = fingerprint_instance(db, query, kind)
    if fingerprint is not None:
        circuits.put_circuit(fingerprint, circuit, parent=ancestor_fingerprint)
    return circuit


__all__ = [
    "MAX_CHAIN_DEPTH",
    "cached_ancestor",
    "delta_chain",
    "derive_instance_circuit",
]
