"""Canonical instance fingerprints for cross-job memoization.

Two counting jobs with the same fingerprint are guaranteed to have the same
answer, so the engine can solve one and serve the other from cache.  The
fingerprint is a SHA-256 digest of a *canonical form* of the instance that
is invariant under the renamings that provably preserve counts:

* **query variables** are bound, so any bijective renaming (and any
  reordering of atoms / disjuncts) leaves ``#Val`` and ``#Comp`` unchanged;
* **nulls** are relabeled by a signature-refinement pass (domain, then
  occurrence structure), so structurally identical databases that differ
  only in null labels usually collapse to one cache entry.

Soundness does not depend on the refinement being a perfect canonical
labeling: the canonical form *is* a faithful description of the instance up
to renaming, so equal forms always describe isomorphic instances.  A
missed isomorphism merely costs a cache miss.

Queries carrying opaque decision procedures (:class:`CustomQuery`) have no
syntactic canonical form; :func:`fingerprint_job` returns ``None`` for them
and the engine solves such jobs without caching.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Mapping

from repro.core.query import BCQ, BooleanQuery, Const, Negation, UCQ
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term, is_null

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.jobs import CountJob

Canonical = object


def _constant_key(value: Term) -> tuple[str, str, str]:
    # Type name + repr keeps int 1 and str "1" (and any other well-behaved
    # hashable constants) in disjoint namespaces.
    return ("c", type(value).__name__, repr(value))


def _canonical_bcq(query: BCQ) -> Canonical:
    def skeleton(atom) -> tuple:
        # Variable-name-independent shape: constants verbatim, variables by
        # their local equality pattern within the atom.
        local: dict = {}
        pattern = []
        for term in atom.terms:
            if isinstance(term, Const):
                pattern.append(_constant_key(term.value))
            else:
                pattern.append(("v", local.setdefault(term, len(local))))
        return (atom.relation, tuple(pattern))

    ordered = sorted(query.atoms, key=skeleton)
    ids: dict = {}
    atoms = []
    for atom in ordered:
        terms: list[tuple] = []
        for term in atom.terms:
            if isinstance(term, Const):
                terms.append(_constant_key(term.value))
            else:
                terms.append(("v", ids.setdefault(term, len(ids))))
        atoms.append((atom.relation, tuple(terms)))
    return ("bcq", tuple(atoms))


def fingerprint_query(query: BooleanQuery | None) -> Canonical | None:
    """Canonical form of a query, or ``None`` when it has no syntax.

    Invariant under variable renaming and atom/disjunct reordering.
    """
    if query is None:
        return ("none",)
    if isinstance(query, BCQ):
        return _canonical_bcq(query)
    if isinstance(query, UCQ):
        parts = sorted(repr(_canonical_bcq(d)) for d in query.disjuncts)
        return ("ucq", tuple(parts))
    if isinstance(query, Negation):
        inner = fingerprint_query(query.inner)
        return None if inner is None else ("neg", inner)
    return None  # CustomQuery and anything else opaque


def fingerprint_db(db: IncompleteDatabase) -> Canonical:
    """Canonical form of an incomplete database.

    Nulls are relabeled ``0..k-1`` by a two-round signature refinement
    (domain first, then occurrence structure), with the original label as a
    deterministic tie-break.  The result describes ``D`` exactly up to a
    bijective null renaming — which preserves both ``#Val`` and ``#Comp``.
    """
    return _canonical_db(db)[0]


def _canonical_db(
    db: IncompleteDatabase,
) -> tuple[Canonical, dict[Null, int]]:
    """Canonical form plus the null relabeling that produced it.

    The relabeling lets per-null payloads (weight tables) be expressed in
    canonical coordinates: two jobs then share a fingerprint exactly when
    some database isomorphism carries one weight table onto the other —
    which provably preserves the weighted count.
    """
    nulls = db.nulls
    signature: dict[Null, str] = {
        null: repr(tuple(sorted(repr(v) for v in db.domain_of(null))))
        for null in nulls
    }
    for _ in range(2):
        occurrences: dict[Null, list[str]] = {null: [] for null in nulls}
        for fact in db.facts:
            shape = (
                fact.relation,
                tuple(
                    ("n", signature[t]) if is_null(t) else _constant_key(t)
                    for t in fact.terms
                ),
            )
            for position, term in enumerate(fact.terms):
                if is_null(term):
                    occurrences[term].append(repr((position, shape)))
        signature = {
            null: repr((signature[null], tuple(sorted(occurrences[null]))))
            for null in nulls
        }

    ordered = sorted(nulls, key=lambda n: (signature[n], repr(n.label)))
    index = {null: i for i, null in enumerate(ordered)}
    facts = tuple(
        sorted(
            (
                fact.relation,
                tuple(
                    ("n", index[t]) if is_null(t) else _constant_key(t)
                    for t in fact.terms
                ),
            )
            for fact in db.facts
        )
    )
    domains = tuple(
        tuple(sorted(repr(v) for v in db.domain_of(null))) for null in ordered
    )
    return ("db", db.is_uniform, facts, domains), index


def _exact_db_form(db: IncompleteDatabase) -> Canonical:
    """Label-exact description of a database (no null canonicalization).

    Compiled circuits and marginal tables answer questions *about* the
    nulls by name, so artifacts must never be shared across
    isomorphic-but-renamed instances — renaming invariance, sound for
    scalar counts, would hand back answers keyed by the wrong nulls.
    """
    facts = tuple(
        sorted(
            (
                fact.relation,
                tuple(
                    ("n", repr(t.label)) if is_null(t) else _constant_key(t)
                    for t in fact.terms
                ),
            )
            for fact in db.facts
        )
    )
    domains = tuple(
        sorted(
            (
                repr(null.label),
                tuple(sorted(repr(v) for v in db.domain_of(null))),
            )
            for null in db.nulls
        )
    )
    return ("exact-db", db.is_uniform, facts, domains)


def _weights_form(weights, index: Mapping[Null, int] | None) -> Canonical:
    """Deterministic form of a per-null weight table.

    With ``index`` the nulls are expressed in canonical coordinates (for
    renaming-invariant fingerprints); without it raw labels are used (for
    label-exact ones).  Weights are keyed by ``repr`` — exact for the
    int/Fraction weights the engine deals in.
    """
    if not weights:
        return ()
    items = []
    for null, table in weights.items():
        if index is None:
            key: object = repr(null.label)
        elif null in index:
            key = index[null]
        else:
            # A null the database does not have: the job will fail in
            # resolve_null_weights with a deterministic error, so a
            # deterministic label-exact key is sound (equal fingerprints
            # fail identically) — and the batch must not crash here.
            key = ("unknown", repr(null.label))
        inner = tuple(
            sorted(
                (_constant_key(value), repr(weight))
                for value, weight in dict(table).items()
            )
        )
        items.append((key, inner))
    return tuple(sorted(items, key=repr))


def fingerprint_instance(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    kind: str = "val",
) -> str | None:
    """Digest identifying a compiled circuit artifact, or ``None``.

    ``kind`` separates the valuation circuit from the completion circuit
    of the same ``(D, q)``.  Label-exact on the database side (see
    :func:`_exact_db_form`); invariant under query-variable renaming,
    which never surfaces in any circuit answer.
    """
    query_form = fingerprint_query(query)
    if query_form is None:
        return None
    payload = repr(("circuit", kind, query_form, _exact_db_form(db)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_delta(delta: object) -> str:
    """Hex digest of a delta's canonical form (:func:`repro.db.deltas.delta_form`)."""
    from repro.db.deltas import delta_form

    payload = repr(("delta", delta_form(delta)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_derivation(
    db: IncompleteDatabase,
    query: BooleanQuery | None,
    kind: str = "val",
) -> str | None:
    """Digest of *how* a derived instance came to be, or ``None``.

    For an instance produced by ``parent.apply(delta)`` this records the
    parent's circuit fingerprint together with the canonical delta form —
    the provenance edge the incremental layer reports in plans and obs
    events.  Content addressing is deliberately separate: the instance's
    own :func:`fingerprint_instance` depends only on its content, so a
    derived instance and a from-scratch twin share cache entries.
    """
    parent = getattr(db, "parent", None)
    delta = getattr(db, "delta", None)
    if parent is None or delta is None:
        return None
    parent_form = fingerprint_instance(parent, query, kind)
    if parent_form is None:
        return None
    from repro.db.deltas import delta_form

    payload = repr(("derived", kind, parent_form, delta_form(delta)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_job(job: "CountJob") -> str | None:
    """Hex digest identifying the job's *answer*, or ``None`` (uncacheable).

    Exact jobs share a fingerprint across ``method`` choices — every exact
    algorithm returns the same count by definition.  Approximate jobs are
    randomized, so their sampling parameters (``epsilon``, ``delta``,
    ``seed``) are part of the key; an unseeded approximate job is not
    reproducible and therefore not cacheable.
    """
    query_form = fingerprint_query(job.query)
    if query_form is None:
        return None
    if job.problem == "approx-val":
        if job.seed is None:
            return None
        extras: tuple = (job.epsilon, job.delta, job.seed)
        db_form: Canonical = fingerprint_db(job.db)
    elif job.problem == "val-weighted":
        # Scalar answer: canonical coordinates keep the fingerprint
        # invariant under null renamings that carry the weights along.
        db_form, index = _canonical_db(job.db)
        extras = (_weights_form(job.weights, index),)
    elif job.problem == "sweep":
        # An ordered list of scalar answers, one per weight table: each
        # entry is renaming-invariant like 'val-weighted', and the table
        # order is part of the key.
        db_form, index = _canonical_db(job.db)
        extras = (
            tuple(
                _weights_form(row, index) for row in (job.weights or ())
            ),
        )
    elif job.problem == "marginals":
        # The answer is keyed by null labels, so the fingerprint must be
        # label-exact — a renamed twin has a differently-keyed answer.
        db_form = _exact_db_form(job.db)
        extras = (_weights_form(job.weights, None),)
    elif job.problem == "update":
        # An update job answers #Val of the *updated* instance, so it is
        # fingerprinted as the plain 'val' job on the delta-chain result —
        # memo entries are shared with equivalent from-scratch val jobs.
        try:
            child = job.db
            for delta in job.deltas:
                child = child.apply(delta)
        except (ValueError, KeyError, TypeError):
            return None  # invalid chain: solve reports the real error
        payload = repr(("val", (), query_form, fingerprint_db(child)))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
    else:
        extras = ()
        db_form = fingerprint_db(job.db)
    payload = repr((job.problem, extras, query_form, db_form))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
