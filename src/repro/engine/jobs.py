"""Job and result records for the batch counting engine.

A :class:`CountJob` is one self-contained counting instance — database,
query, problem kind, and the knobs the underlying solver takes.  Jobs are
immutable values so they can be fingerprinted, pickled to worker processes,
and replayed.  :func:`execute_job` is the single entry point both the
serial path and the pool workers run; it never raises, reporting solver
failures in :attr:`JobResult.error` instead so one poisoned instance cannot
take down a batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact.brute import DEFAULT_BUDGET

#: Problem kinds the engine understands.
PROBLEMS = ("val", "comp", "approx-val")


@dataclass(frozen=True)
class CountJob:
    """One counting instance: ``(problem, D, q)`` plus solver knobs.

    ``problem`` is ``'val'`` (``#Val``), ``'comp'`` (``#Comp``; ``query``
    may be ``None`` to count all completions) or ``'approx-val'`` (the
    Karp-Luby FPRAS; ``epsilon``/``delta``/``seed`` apply).  ``method`` and
    ``budget`` are forwarded to :mod:`repro.exact.dispatch` for the exact
    problems.
    """

    problem: str
    db: IncompleteDatabase
    query: BooleanQuery | None = None
    method: str = "auto"
    budget: int | None = DEFAULT_BUDGET
    epsilon: float = 0.1
    delta: float = 0.25
    seed: int | None = 0
    label: str | None = None

    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ValueError(
                "unknown problem %r (one of %s)" % (self.problem, PROBLEMS)
            )
        if self.problem != "comp" and self.query is None:
            raise ValueError(
                "problem %r needs a query (only 'comp' allows query=None)"
                % self.problem
            )


@dataclass
class JobResult:
    """Outcome of one job: a count or an error, plus provenance.

    ``method`` is the *resolved* algorithm that produced the count (e.g.
    ``'lineage'`` for an ``'auto'`` job), ``seconds`` the solve wall time
    (``0.0`` for cache hits), ``cache_hit`` whether the memo layer answered.
    """

    problem: str
    count: int | float | None
    method: str | None
    seconds: float
    label: str | None = None
    cache_hit: bool = False
    error: str | None = None
    fingerprint: str | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (used by the ``repro-count batch`` CLI)."""
        return {
            "label": self.label,
            "problem": self.problem,
            "count": self.count,
            "method": self.method,
            "seconds": round(self.seconds, 6),
            "cache_hit": self.cache_hit,
            "error": self.error,
        }


def execute_job(job: CountJob) -> JobResult:
    """Solve one job, catching solver errors into the result record."""
    started = time.perf_counter()
    try:
        count, method = _solve(job)
        error = None
    except Exception as exc:  # noqa: BLE001 - batch isolation by design
        count, method = None, None
        error = "%s: %s" % (type(exc).__name__, exc)
    return JobResult(
        problem=job.problem,
        count=count,
        method=method,
        seconds=time.perf_counter() - started,
        label=job.label,
        error=error,
    )


def _solve(job: CountJob) -> tuple[int | float, str]:
    # Imported lazily: dispatch offers batch wrappers built on the engine,
    # so a module-level import would be circular.
    from repro.exact.dispatch import (
        count_completions,
        count_valuations,
        resolve_completion_method,
        resolve_valuation_method,
    )

    if job.problem == "val":
        assert job.query is not None
        resolved = resolve_valuation_method(job.db, job.query, job.method)
        return (
            count_valuations(
                job.db, job.query, method=resolved, budget=job.budget
            ),
            resolved,
        )
    if job.problem == "comp":
        resolved = resolve_completion_method(job.db, job.query, job.method)
        return (
            count_completions(
                job.db, job.query, method=resolved, budget=job.budget
            ),
            resolved,
        )
    assert job.problem == "approx-val"
    from repro.approx.fpras import fpras_count_valuations

    estimate = fpras_count_valuations(
        job.db,
        job.query,  # type: ignore[arg-type]  # __post_init__ guarantees it
        epsilon=job.epsilon,
        delta=job.delta,
        seed=job.seed,
    )
    return estimate, "karp-luby"
