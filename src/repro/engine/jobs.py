"""Job and result records for the batch counting engine.

A :class:`CountJob` is one self-contained counting instance — database,
query, problem kind, and the knobs the underlying solver takes.  Jobs are
immutable values so they can be fingerprinted, pickled to worker processes,
and replayed.  :func:`execute_job` is the single entry point both the
serial path and the pool workers run; it never raises, reporting solver
failures in :attr:`JobResult.error` instead so one poisoned instance cannot
take down a batch.

Problem kinds that evaluate a compiled d-DNNF circuit (``val-weighted``,
``marginals``, and the exact problems under ``method='circuit'``) accept a
circuit store (:class:`~repro.engine.cache.CountCache`): the instance is
compiled at most once per store and every further question about it is a
linear circuit pass — the amortization the batch engine exists for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Mapping, Sequence

from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.exact.brute import DEFAULT_BUDGET
from repro.obs import capture as _capture

#: Problem kinds the engine understands.
PROBLEMS = (
    "val", "comp", "approx-val", "val-weighted", "marginals", "sweep",
    "update",
)

#: Problems answered by passes over a compiled circuit.
CIRCUIT_PROBLEMS = ("val-weighted", "marginals", "sweep")

#: Problems whose ``weights`` knob is meaningful: the scalar circuit
#: problems take one per-null table, ``sweep`` takes a *sequence* of
#: tables (one answer each).
WEIGHTED_PROBLEMS = ("val-weighted", "marginals", "sweep")


@dataclass(frozen=True)
class CountJob:
    """One counting instance: ``(problem, D, q)`` plus solver knobs.

    ``problem`` is ``'val'`` (``#Val``), ``'comp'`` (``#Comp``; ``query``
    may be ``None`` to count all completions), ``'approx-val'`` (the
    Karp-Luby FPRAS; ``epsilon``/``delta``/``seed`` apply),
    ``'val-weighted'`` (weighted ``#Val``; ``weights`` applies),
    ``'marginals'`` (all per-null value marginals of ``#Val``; ``weights``
    optionally biases the valuation distribution), ``'sweep'`` (weighted
    ``#Val`` under a *sequence* of weight tables — ``weights`` is that
    sequence, the result one count per table) or ``'update'`` (``#Val``
    of ``db`` after applying the ``deltas`` chain, answered from a cached
    ancestor circuit when possible).  ``method`` and ``budget`` are
    forwarded to :mod:`repro.exact.dispatch` for the exact problems.
    """

    problem: str
    db: IncompleteDatabase
    query: BooleanQuery | None = None
    method: str = "auto"
    budget: int | None = DEFAULT_BUDGET
    epsilon: float = 0.1
    delta: float = 0.25
    seed: int | None = 0
    weights: (
        Mapping[Any, Mapping[Any, Any]]
        | Sequence[Mapping[Any, Mapping[Any, Any]] | None]
        | None
    ) = None
    label: str | None = None
    #: ``'update'`` only: the delta chain to apply to ``db`` — the job
    #: answers ``#Val`` of the *updated* instance, preferring a cached
    #: ancestor circuit (conditioning / component splice) over recompiling.
    deltas: Sequence[Any] = ()

    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ValueError(
                "unknown problem %r (one of %s)" % (self.problem, PROBLEMS)
            )
        if self.problem != "comp" and self.query is None:
            raise ValueError(
                "problem %r needs a query (only 'comp' allows query=None)"
                % self.problem
            )
        if self.problem == "update":
            from repro.db.deltas import is_delta

            chain = tuple(self.deltas)
            if not chain:
                raise ValueError("'update' needs at least one delta")
            if not all(is_delta(delta) for delta in chain):
                raise ValueError(
                    "'update' deltas must be repro.db.deltas records"
                )
            object.__setattr__(self, "deltas", chain)
        elif self.deltas:
            raise ValueError("deltas only apply to problem 'update'")
        if self.problem == "sweep":
            if self.weights is None or isinstance(self.weights, Mapping):
                raise ValueError(
                    "'sweep' takes a sequence of per-null weight tables"
                )
            # Normalized to a tuple so the job stays a hashable value.
            object.__setattr__(self, "weights", tuple(self.weights))
        elif self.weights is not None and self.problem not in WEIGHTED_PROBLEMS:
            raise ValueError(
                "weights only apply to problems %s" % (WEIGHTED_PROBLEMS,)
            )


@dataclass
class JobResult:
    """Outcome of one job: an answer or an error, plus provenance.

    ``count`` is the exact count for the counting problems, the estimate
    for ``approx-val``, the (possibly Fraction) weighted count for
    ``val-weighted``, the nested ``{null: {value: probability}}``
    record for ``marginals``, and the per-table list of weighted counts
    for ``sweep``.  ``method`` is the *resolved* algorithm that
    produced it (e.g. ``'lineage'`` for an ``'auto'`` job), ``seconds``
    the solve wall time (``0.0`` for cache hits), ``cache_hit`` whether
    the memo layer answered.
    """

    problem: str
    count: Any
    method: str | None
    seconds: float
    label: str | None = None
    cache_hit: bool = False
    error: str | None = None
    fingerprint: str | None = field(default=None, repr=False)
    #: Engine provenance: ``fallback`` records why a job left the pool
    #: path (unpicklable query, mid-dispatch pickle failure), and
    #: ``compiled_in_worker`` marks answers whose circuit artifact was
    #: compiled in a worker and installed into the parent's store.
    meta: dict[str, Any] = field(default_factory=dict, repr=False)
    #: Serialized circuit artifact a worker shipped back to the parent;
    #: cleared once the parent installs it into the circuit store.
    artifact: bytes | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (used by the ``repro-count batch`` CLI)."""
        record = {
            "label": self.label,
            "problem": self.problem,
            "count": _jsonable(self.count),
            "method": self.method,
            "seconds": round(self.seconds, 6),
            "cache_hit": self.cache_hit,
            "error": self.error,
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        return record


def _jsonable(value: Any) -> Any:
    """Exact answers in a form ``json.dumps`` accepts (Fractions -> float)."""
    if isinstance(value, Fraction):
        return float(value)
    if isinstance(value, dict):
        return {key: _jsonable(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(inner) for inner in value]
    return value


def execute_job(job: CountJob, circuits: Any = None) -> JobResult:
    """Solve one job, catching solver errors into the result record.

    ``circuits`` is an optional circuit store (the engine passes its
    :class:`~repro.engine.cache.CountCache`); without one, circuit-backed
    problems compile a throwaway circuit per job.
    """
    started = time.perf_counter()
    with _capture() as captured:
        try:
            count, method = _solve(job, circuits)
            error = None
        except Exception as exc:  # noqa: BLE001 - batch isolation by design
            count, method = None, None
            error = "%s: %s" % (type(exc).__name__, exc)
    result = JobResult(
        problem=job.problem,
        count=count,
        method=method,
        seconds=time.perf_counter() - started,
        label=job.label,
        error=error,
    )
    metrics = capture_metrics(captured)
    if metrics:
        result.meta["metrics"] = metrics
    return result


def capture_metrics(captured: "_capture") -> dict[str, Any]:
    """A job's observability payload: the compact, picklable digest of one
    solve's capture — inclusive per-phase seconds plus solver counters.

    This is the ``meta['metrics']`` schema the JSONL result format
    round-trips: ``{"phases": {name: seconds}, "counters": {name: n}}``,
    either key omitted when empty, the whole dict empty when nothing was
    captured (observability disabled).
    """
    metrics: dict[str, Any] = {}
    phases = {
        name: round(seconds, 6)
        for name, seconds in sorted(captured.phase_totals().items())
    }
    if phases:
        metrics["phases"] = phases
    if captured.counters:
        metrics["counters"] = dict(sorted(captured.counters.items()))
    return metrics


class _CapturedCircuitStore:
    """A one-slot circuit store handed to :func:`execute_job` in a worker.

    The worker has no access to the parent's :class:`CountCache`; this
    shim captures whatever circuit the solve compiled so it can be
    serialized and shipped home with the answer.
    """

    __slots__ = ("circuit",)

    def __init__(self) -> None:
        self.circuit: Any = None

    def get_circuit(self, instance: str) -> Any | None:
        return self.circuit

    def put_circuit(
        self, instance: str, circuit: Any, parent: str | None = None
    ) -> None:
        self.circuit = circuit


def execute_job_capturing(job: CountJob) -> JobResult:
    """Worker entry point for circuit-backed jobs: solve *and* ship the
    compiled artifact back as bytes (see
    :meth:`repro.compile.backend.ValuationCircuit.to_bytes`).

    A serialization failure never fails the job — the answer is already
    computed; the parent merely loses the chance to cache the circuit.
    """
    store = _CapturedCircuitStore()
    result = execute_job(job, store)
    if result.ok and store.circuit is not None:
        try:
            result.artifact = store.circuit.to_bytes()
        except Exception:  # noqa: BLE001 - artifact loss must not poison the answer
            result.artifact = None
    return result


def needs_circuit(job: CountJob) -> bool:
    """True when solving ``job`` will evaluate a compiled circuit, so the
    engine should schedule it around its circuit store (worker compile for
    the first job of a fresh instance, in-parent passes afterwards).

    Keyed on the *resolved* method, not the requested one: a weighted job
    that resolves to the Theorem 3.6 closed form, or a ``method='circuit'``
    job on a non-(U)CQ that falls back to ``brute``, never compiles a
    circuit — it stays pool-eligible and its memo entry stays unlinked
    (an instance link would make the cache refuse to store it).
    """
    # Imported lazily: dispatch builds on the engine (circular otherwise).
    from repro.compile.backend import lineage_supports
    from repro.exact.dispatch import (
        resolve_sweep_method,
        resolve_weighted_method,
    )

    if job.problem in ("marginals", "update"):
        return True
    if job.problem in ("val-weighted", "sweep"):
        resolver = (
            resolve_sweep_method
            if job.problem == "sweep"
            else resolve_weighted_method
        )
        try:
            resolved = resolver(job.db, job.query, job.method)
        except ValueError:
            # Invalid method for this problem: execute_job will turn it
            # into a per-job error — the partition must not raise.
            return False
        return resolved == "circuit"
    if job.method == "circuit" and job.problem in ("val", "comp"):
        return lineage_supports(job.query)
    return False


def instance_db(job: CountJob) -> IncompleteDatabase:
    """The database whose circuit answers ``job``.

    The job's own database for everything except ``'update'``, whose
    circuit belongs to the delta-chain *result* — provenance rides along,
    so the engine can later derive the circuit from a cached ancestor.
    """
    if job.problem != "update":
        return job.db
    db = job.db
    for delta in job.deltas:
        db = db.apply(delta)
    return db


def instance_fingerprint_of(job: CountJob) -> str | None:
    """The circuit-store key for ``job``'s instance, or ``None``."""
    from repro.engine.fingerprint import fingerprint_instance

    kind = "comp" if job.problem == "comp" else "val"
    try:
        db = instance_db(job)
    except (ValueError, KeyError, TypeError):
        # An invalid delta chain: the solve will report the real error;
        # scheduling just treats the job as uncacheable.
        return None
    return fingerprint_instance(db, job.query, kind)


def _circuit_for(job: CountJob, circuits: Any) -> tuple[Any, str]:
    """The compiled circuit for ``job``'s instance, plus how it was got.

    Returns ``(circuit, source)`` with ``source`` one of ``'cached'``
    (store hit), ``'derived'`` (conditioned or spliced from a cached
    delta ancestor — see :mod:`repro.engine.incremental`) or
    ``'compiled'`` (fresh).  Derivation kicks in for *any* circuit
    problem whose instance carries delta provenance, not just
    ``'update'`` jobs.
    """
    from repro.compile.backend import CompletionCircuit, ValuationCircuit

    db = instance_db(job)
    kind = "comp" if job.problem == "comp" else "val"
    fingerprint = None
    if circuits is not None:
        from repro.engine.fingerprint import fingerprint_instance

        fingerprint = fingerprint_instance(db, job.query, kind)
    if fingerprint is not None:
        cached = circuits.get_circuit(fingerprint)
        if cached is not None:
            return cached, "cached"
        if getattr(db, "parent", None) is not None:
            from repro.engine.incremental import derive_instance_circuit

            derived = derive_instance_circuit(
                db, job.query, kind, circuits, fingerprint
            )
            if derived is not None:
                return derived, "derived"
    if job.problem == "comp":
        compiled: Any = CompletionCircuit(db, job.query)
    else:
        assert job.query is not None
        compiled = ValuationCircuit(db, job.query)
    if fingerprint is not None:
        circuits.put_circuit(fingerprint, compiled)
    return compiled, "compiled"


def _instance_circuit(job: CountJob, circuits: Any):
    """The compiled circuit for ``job``'s instance — cached when a store
    is available, compiled fresh otherwise."""
    circuit, _source = _circuit_for(job, circuits)
    return circuit


def marginals_record(marginals: dict) -> dict[str, dict[str, float]]:
    """Marginal tables keyed by reprs, JSON- and comparison-friendly."""
    return {
        repr(null): {
            repr(value): float(probability)
            for value, probability in sorted(table.items(), key=repr)
        }
        for null, table in marginals.items()
    }


def _solve(job: CountJob, circuits: Any = None) -> tuple[Any, str]:
    # Imported lazily: dispatch offers batch wrappers built on the engine,
    # so a module-level import would be circular.
    from repro.exact.dispatch import (
        count_completions,
        count_valuations,
        count_valuations_sweep,
        count_valuations_weighted,
        resolve_completion_method,
        resolve_sweep_method,
        resolve_valuation_method,
        resolve_weighted_method,
    )

    if job.problem == "val":
        assert job.query is not None
        resolved = resolve_valuation_method(job.db, job.query, job.method)
        if resolved == "circuit":
            return _instance_circuit(job, circuits).count(), resolved
        return (
            count_valuations(
                job.db, job.query, method=resolved, budget=job.budget
            ),
            resolved,
        )
    if job.problem == "comp":
        resolved = resolve_completion_method(job.db, job.query, job.method)
        if resolved == "circuit":
            return _instance_circuit(job, circuits).count(), resolved
        return (
            count_completions(
                job.db, job.query, method=resolved, budget=job.budget
            ),
            resolved,
        )
    if job.problem == "val-weighted":
        assert job.query is not None
        resolved = resolve_weighted_method(job.db, job.query, job.method)
        if resolved == "circuit":
            compiled = _instance_circuit(job, circuits)
            return compiled.weighted_count(job.weights), resolved
        return (
            count_valuations_weighted(
                job.db,
                job.query,
                job.weights,
                method=resolved,
                budget=job.budget,
            ),
            resolved,
        )
    if job.problem == "sweep":
        assert job.query is not None
        rows = list(job.weights or ())
        resolved = resolve_sweep_method(job.db, job.query, job.method)
        if resolved == "circuit":
            compiled = _instance_circuit(job, circuits)
            return compiled.weighted_count_many(rows), resolved
        return (
            count_valuations_sweep(
                job.db, job.query, rows, method=resolved, budget=job.budget
            ),
            resolved,
        )
    if job.problem == "marginals":
        compiled = _instance_circuit(job, circuits)
        return marginals_record(compiled.marginals(job.weights)), "circuit"
    if job.problem == "update":
        assert job.query is not None
        compiled, source = _circuit_for(job, circuits)
        # 'delta' marks an answer actually derived from an ancestor
        # circuit (conditioning or component splice); a cold store still
        # reports the honest 'circuit' compile.
        return compiled.count(), "delta" if source == "derived" else "circuit"
    assert job.problem == "approx-val"
    from repro.approx.fpras import fpras_count_valuations

    estimate = fpras_count_valuations(
        job.db,
        job.query,  # type: ignore[arg-type]  # __post_init__ guarantees it
        epsilon=job.epsilon,
        delta=job.delta,
        seed=job.seed,
    )
    return estimate, "karp-luby"
