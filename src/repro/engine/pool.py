"""The batch engine: dedup through the cache, fan out to worker processes.

``BatchEngine.run`` takes a stream of :class:`~repro.engine.jobs.CountJob`
and returns one :class:`~repro.engine.jobs.JobResult` per job, in order.
The pipeline is:

1. **fingerprint** every job (:mod:`repro.engine.fingerprint`);
2. **memoize** — jobs whose fingerprint is already cached (from a previous
   batch or from an earlier duplicate in this one) never reach a solver;
3. **fan out** the unique cache misses to a ``multiprocessing`` pool.
   Workers are shared-nothing: each receives a pickled job and returns a
   result record, no state is shared beyond the task queue.  Jobs that
   cannot be pickled (e.g. a :class:`CustomQuery` closing over a lambda)
   are solved serially in the parent instead of failing, with the reason
   recorded in the result's ``meta['fallback']``.

Circuit-backed jobs (``val-weighted``, ``marginals``, ``method='circuit'``)
are scheduled around the parent's circuit store: the **first** job of each
not-yet-cached instance goes to a worker, which compiles the circuit,
answers, and ships the serialized artifact home
(:func:`~repro.engine.jobs.execute_job_capturing`); the parent rehydrates
and installs it (:func:`repro.compile.backend.artifact_from_bytes`), and
every *further* question about that instance — in this batch or the next —
runs in the parent as a linear pass over the installed circuit.  Distinct
circuit instances therefore compile in parallel while the amortization
across question modes is preserved, and the eviction invariant is
untouched: a worker-compiled circuit is a first-class store entry whose
memo links drop with it.

``workers=0``/``1`` (or a single-miss batch) skips process creation
entirely, which keeps tests and tiny batches free of pool overhead.

Pool lifecycle: by default every ``run`` call builds and tears down its
own pool (nothing to leak, nothing to close).  A long-lived engine —
a server draining batch after batch — passes ``persistent_pool=True`` to
pay process startup once: the pool is created lazily, reused across
``run`` calls, optionally pre-forked with :meth:`BatchEngine.warm`, and
released by :meth:`BatchEngine.close` (the engine is a context manager).
Small tasks are dispatched in chunks so a big batch of cheap jobs does
not pay one IPC round trip each.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
import time
from typing import Iterable, Sequence

from repro.compile.serialize import CircuitFormatError
from repro.core.query import BCQ, Negation, UCQ
from repro.engine.cache import CountCache
from repro.engine.fingerprint import fingerprint_instance, fingerprint_job
from repro.engine.incremental import cached_ancestor, delta_chain
from repro.engine.jobs import (
    CountJob,
    JobResult,
    execute_job,
    execute_job_capturing,
    instance_db,
    instance_fingerprint_of,
    needs_circuit,
)
from repro.obs import (
    default_registry,
    emit_record as _emit_record,
    enabled as _obs_enabled,
    incr as _incr,
    observe as _observe,
    span as _span,
)


def default_workers() -> int:
    """Worker count for ``workers=None``: one per CPU, at least one."""
    return max(os.cpu_count() or 1, 1)


class BatchEngine:
    """Reusable batch runner with a persistent cross-batch cache."""

    def __init__(
        self,
        workers: int | None = None,
        cache: CountCache | None = None,
        persistent_pool: bool = False,
    ) -> None:
        self.workers = default_workers() if workers is None else max(workers, 0)
        self.cache = cache if cache is not None else CountCache()
        self._persistent = persistent_pool
        self._pool: "multiprocessing.pool.Pool | None" = None

    # -- pool lifecycle ----------------------------------------------------

    def warm(self) -> None:
        """Pre-fork the persistent pool so the first batch pays no startup.

        No-op unless ``persistent_pool=True`` and ``workers > 1``.
        """
        if self._persistent and self.workers > 1 and self._pool is None:
            started = time.perf_counter()
            self._pool = multiprocessing.get_context().Pool(self.workers)
            if _obs_enabled():
                registry = default_registry()
                registry.gauge("engine.pool.warm_seconds").set(
                    time.perf_counter() - started
                )
                registry.gauge("engine.pool.workers").set(self.workers)

    def close(self) -> None:
        """Release the persistent pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def run(self, jobs: Sequence[CountJob]) -> list[JobResult]:
        """Solve every job, in order; errors are per-job, never raised."""
        with _span("engine.batch", jobs=len(jobs)):
            results = self._run(jobs)
        if _obs_enabled():
            for result in results:
                queue = (result.meta.get("metrics") or {}).get(
                    "queue_seconds", 0.0
                )
                _observe("engine.job.queue_seconds", queue)
                _observe("engine.job.execute_seconds", result.seconds)
                _observe("engine.job.total_seconds", queue + result.seconds)
                if result.cache_hit:
                    _incr("engine.memo_hits")
            _incr("engine.jobs", len(jobs))
            self.cache.publish(default_registry())
        return results

    def _run(self, jobs: Sequence[CountJob]) -> list[JobResult]:
        fingerprints = [fingerprint_job(job) for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)

        representative: dict[str, int] = {}
        followers: dict[int, list[int]] = {}
        to_solve: list[int] = []
        for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
            if fingerprint is not None:
                first = representative.get(fingerprint)
                if first is not None:
                    # An in-batch duplicate: resolved from the memo layer
                    # (and counted as a hit) once its representative solves.
                    followers.setdefault(first, []).append(index)
                    continue
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    count, method = cached
                    results[index] = JobResult(
                        problem=job.problem,
                        count=count,
                        method=method,
                        seconds=0.0,
                        label=job.label,
                        cache_hit=True,
                        fingerprint=fingerprint,
                    )
                    continue
                representative[fingerprint] = index
            to_solve.append(index)

        solved = self._execute([jobs[index] for index in to_solve])
        for index, result in zip(to_solve, solved):
            result.fingerprint = fingerprints[index]
            results[index] = result
            if result.ok and fingerprints[index] is not None:
                assert result.count is not None and result.method is not None
                self.cache.put(
                    fingerprints[index],
                    result.count,
                    result.method,
                    instance=self._instance_of(jobs[index]),
                )

        for first, duplicate_indices in followers.items():
            source = results[first]
            assert source is not None
            for index in duplicate_indices:
                if source.ok:
                    # Served by the memo layer: record the hit.
                    self.cache.get(fingerprints[index])  # type: ignore[arg-type]
                    results[index] = JobResult(
                        problem=source.problem,
                        count=source.count,
                        method=source.method,
                        seconds=0.0,
                        label=jobs[index].label,
                        cache_hit=True,
                        fingerprint=fingerprints[index],
                    )
                    continue
                # The representative failed, but a duplicate instance may
                # still succeed under its own method/budget (those knobs
                # are not part of the fingerprint): solve it for real.
                result = execute_job(jobs[index], self.cache)
                result.fingerprint = fingerprints[index]
                results[index] = result
                if result.ok and fingerprints[index] is not None:
                    assert result.count is not None
                    assert result.method is not None
                    self.cache.put(
                        fingerprints[index],
                        result.count,
                        result.method,
                        instance=self._instance_of(jobs[index]),
                    )
                    # Remaining duplicates are served from this success.
                    source = result

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # -- execution ---------------------------------------------------------

    def _instance_of(self, job: CountJob) -> str | None:
        """Circuit-store key linking a memo entry to its instance."""
        return instance_fingerprint_of(job) if needs_circuit(job) else None

    def _derivable(self, job: CountJob, claimed: set[str]) -> bool:
        """Whether the job's instance derives from an ancestor circuit.

        True when an ancestor is cached already *or* claimed by a compile
        worker earlier in the same batch — the serial pass runs after
        worker artifacts are installed, so the ancestor is in the store
        by the time this job executes in the parent.
        """
        try:
            db = instance_db(job)
        except (ValueError, KeyError, TypeError):
            return False
        if getattr(db, "parent", None) is None:
            return False
        kind = "comp" if job.problem == "comp" else "val"
        if cached_ancestor(db, job.query, kind, self.cache) is not None:
            return True
        if claimed:
            for ancestor, _deltas in delta_chain(db):
                fingerprint = fingerprint_instance(ancestor, job.query, kind)
                if fingerprint is not None and fingerprint in claimed:
                    return True
        return False

    def _execute(self, jobs: Sequence[CountJob]) -> list[JobResult]:
        if self.workers <= 1 or len(jobs) <= 1:
            return [execute_job(job, self.cache) for job in jobs]

        parallel: list[int] = []        # plain jobs, pool-dispatched
        compile_remote: list[int] = []  # circuit jobs compiled in a worker
        serial: list[int] = []          # in-parent: store hits and stragglers
        fallback: dict[int, str] = {}
        claimed: set[str] = set()
        for index, job in enumerate(jobs):
            if not _picklable(job):
                fallback[index] = (
                    "job is not picklable; solved serially in the parent"
                )
                serial.append(index)
                continue
            if needs_circuit(job):
                # One worker compile per unique instance: the first job of
                # a not-yet-cached instance ships its circuit home, every
                # other question about it runs in the parent as a linear
                # pass over the installed artifact.
                instance = instance_fingerprint_of(job)
                if instance is None or self.cache.has_circuit(instance):
                    serial.append(index)
                elif instance in claimed:
                    serial.append(index)
                elif self._derivable(job, claimed):
                    # Delta-derived instance with a cached ancestor: the
                    # parent conditions/resplices the ancestor circuit in
                    # a linear pass — cheaper than a worker recompile,
                    # and the derived circuit lands in the store with its
                    # provenance link intact.
                    serial.append(index)
                else:
                    claimed.add(instance)
                    compile_remote.append(index)
                continue
            parallel.append(index)

        pool_indices = parallel + compile_remote
        if len(pool_indices) <= 1:
            results_serial = [execute_job(job, self.cache) for job in jobs]
            for index, reason in fallback.items():
                results_serial[index].meta.setdefault("fallback", reason)
            return results_serial

        results: list[JobResult | None] = [None] * len(jobs)
        tasks = [(jobs[index], False) for index in parallel]
        tasks += [(jobs[index], True) for index in compile_remote]
        try:
            if self._persistent:
                self.warm()
                assert self._pool is not None
                chunk = max(1, len(tasks) // (self.workers * 4))
                solved = self._consume(
                    self._pool.imap(_pool_solve, tasks, chunksize=chunk)
                )
            else:
                processes = min(self.workers, len(tasks))
                # Chunked dispatch: small jobs ride together so a batch of
                # cheap tasks does not pay one IPC round trip each, while
                # the divisor keeps enough chunks in flight to balance
                # heterogeneous job sizes across the pool.
                chunk = max(1, len(tasks) // (processes * 4))
                with multiprocessing.get_context().Pool(processes) as pool:
                    solved = self._consume(
                        pool.imap(_pool_solve, tasks, chunksize=chunk)
                    )
        except Exception as exc:
            # A persistent pool that failed mid-dispatch cannot be trusted
            # with the next batch; drop it (a fresh one builds on demand).
            if self._pool is not None:
                self.close()
            # A job the cheap picklability screen admitted failed to
            # serialize mid-dispatch (e.g. an exotic constant inside a
            # database).  Solvers are deterministic and approx jobs are
            # seeded, so re-running the whole slice serially is safe —
            # but never silently: every affected result records why it
            # left the pool path, and the batch summary counts them.
            reason = "pool dispatch failed (%s: %s); slice re-solved serially" % (
                type(exc).__name__, exc,
            )
            solved = []
            for index in pool_indices:
                result = execute_job(jobs[index], self.cache)
                result.meta.setdefault("fallback", reason)
                solved.append(result)
        for index, result in zip(pool_indices, solved):
            results[index] = result
        for index in compile_remote:
            self._install_artifact(jobs[index], results[index])
        for index in serial:
            result = execute_job(jobs[index], self.cache)
            if index in fallback:
                result.meta.setdefault("fallback", fallback[index])
            results[index] = result
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _consume(self, arrivals: "Iterable[JobResult]") -> list[JobResult]:
        """Drain a pool's ordered result stream, timestamping each arrival.

        Ordered ``imap`` (same chunking as the old ``map``) lets the
        parent decompose per-job latency: *total* is dispatch-to-arrival
        wall time, *execute* the worker's own solve time, *queue* the
        difference — time spent waiting for a worker slot, in IPC, or
        behind earlier results of the ordered stream.  The queue share is
        recorded into the job's ``meta['metrics']`` (it rides the same
        payload workers already ship) and each worker's captured metrics
        are folded into the parent registry here, at the only point that
        knows the result crossed a process boundary.
        """
        solved = []
        dispatched = time.perf_counter()
        for result in arrivals:
            if _obs_enabled():
                total = time.perf_counter() - dispatched
                queue = max(0.0, total - result.seconds)
                result.meta.setdefault("metrics", {})["queue_seconds"] = round(
                    queue, 6
                )
                self._absorb_worker_metrics(result)
            solved.append(result)
        return solved

    def _absorb_worker_metrics(self, result: JobResult) -> None:
        """Fold a worker-process result's shipped metrics into the parent:
        counters add (visible to any active capture), each phase total
        lands as one observation in the phase's histogram, and each phase
        is re-emitted to the attached sinks (the sinks never saw the
        worker's own spans)."""
        metrics = result.meta.get("metrics")
        if not metrics:
            return
        registry = default_registry()
        for name, seconds in (metrics.get("phases") or {}).items():
            registry.histogram(name).observe(seconds)
            _emit_record(
                {
                    "type": "span",
                    "name": name,
                    "path": name,
                    "depth": 0,
                    "seconds": seconds,
                    "label": result.label,
                    "worker": True,
                }
            )
        for name, value in (metrics.get("counters") or {}).items():
            _incr(name, value)

    def _install_artifact(self, job: CountJob, result: JobResult | None) -> None:
        """Rehydrate a worker-shipped circuit into the parent's store.

        Installation happens *before* the memo layer records the answer,
        so the answer links to its circuit exactly as if the parent had
        compiled it — ``--cache-mb`` eviction keeps dropping circuit and
        derived memo entries together.  A payload the codec rejects is
        discarded: the answer (already computed in the worker) survives,
        it just is not memoized against a circuit the store never held.
        """
        if result is None or not result.ok or result.artifact is None:
            return
        payload, result.artifact = result.artifact, None
        instance = instance_fingerprint_of(job)
        if instance is None:
            return
        try:
            # Imported lazily: repro.compile pulls the whole compilation
            # stack, which workers that never touch circuits skip loading.
            from repro.compile.backend import artifact_from_bytes

            # Update jobs ship the *child* instance's circuit; rehydrate
            # against the database the chain produces, not the base one.
            compiled = artifact_from_bytes(payload, instance_db(job))
        except CircuitFormatError as exc:
            result.meta["artifact_rejected"] = str(exc)
            return
        self.cache.put_circuit(instance, compiled, from_worker=True)
        # put_circuit silently refuses circuits larger than the cache
        # bound; only claim the install when the store actually holds it.
        if self.cache.has_circuit(instance):
            result.meta["compiled_in_worker"] = True
            _incr("engine.worker_circuit_installs")
        else:
            result.meta["artifact_rejected"] = "circuit exceeds the cache bound"


def _pool_solve(task: tuple[CountJob, bool]) -> JobResult:
    """Worker task body: solve, optionally capturing the circuit artifact."""
    # A forked worker inherits the parent's active span stack (the engine
    # forks mid-span); drop it so this job's spans land in its own capture.
    from repro.obs import reset_thread_state

    reset_thread_state()
    job, capture = task
    return execute_job_capturing(job) if capture else execute_job(job)


def _query_is_value_type(query: object) -> bool:
    if query is None or isinstance(query, (BCQ, UCQ)):
        return True
    if isinstance(query, Negation):
        return _query_is_value_type(query.inner)
    return False


def _picklable(job: CountJob) -> bool:
    """Cheap screen for pool dispatch.

    Jobs over syntactic queries are plain value objects and always pickle;
    only opaque queries (:class:`CustomQuery` and friends, which may close
    over lambdas) pay an actual serialization test.
    """
    if _query_is_value_type(job.query):
        return True
    try:
        pickle.dumps(job)
    except Exception:  # pickle raises a zoo of error types
        return False
    return True


def run_batch(
    jobs: Iterable[CountJob],
    workers: int | None = None,
    cache: CountCache | None = None,
) -> list[JobResult]:
    """One-shot convenience wrapper around :class:`BatchEngine`."""
    return BatchEngine(workers=workers, cache=cache).run(list(jobs))
