"""The batch engine: dedup through the cache, fan out to worker processes.

``BatchEngine.run`` takes a stream of :class:`~repro.engine.jobs.CountJob`
and returns one :class:`~repro.engine.jobs.JobResult` per job, in order.
The pipeline is:

1. **fingerprint** every job (:mod:`repro.engine.fingerprint`);
2. **memoize** — jobs whose fingerprint is already cached (from a previous
   batch or from an earlier duplicate in this one) never reach a solver;
3. **fan out** the unique cache misses to a ``multiprocessing`` pool.
   Workers are shared-nothing: each receives a pickled job and returns a
   result record, no state is shared beyond the task queue.  Jobs that
   cannot be pickled (e.g. a :class:`CustomQuery` closing over a lambda)
   are solved serially in the parent instead of failing.  Jobs that
   evaluate a compiled d-DNNF circuit (``val-weighted``, ``marginals``,
   ``method='circuit'``) also run in the parent, against the cache's
   circuit store — the whole point is that one instance compiles once
   and then answers every mode by linear passes, which a shared-nothing
   worker could not amortize.

``workers=0``/``1`` (or a single-mis batch) skips process creation
entirely, which keeps tests and tiny batches free of pool overhead.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Iterable, Sequence

from repro.core.query import BCQ, Negation, UCQ
from repro.engine.cache import CountCache
from repro.engine.fingerprint import fingerprint_job
from repro.engine.jobs import (
    CountJob,
    JobResult,
    execute_job,
    instance_fingerprint_of,
    needs_circuit,
)


def default_workers() -> int:
    """Worker count for ``workers=None``: one per CPU, at least one."""
    return max(os.cpu_count() or 1, 1)


class BatchEngine:
    """Reusable batch runner with a persistent cross-batch cache."""

    def __init__(
        self,
        workers: int | None = None,
        cache: CountCache | None = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(workers, 0)
        self.cache = cache if cache is not None else CountCache()

    def run(self, jobs: Sequence[CountJob]) -> list[JobResult]:
        """Solve every job, in order; errors are per-job, never raised."""
        fingerprints = [fingerprint_job(job) for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)

        representative: dict[str, int] = {}
        followers: dict[int, list[int]] = {}
        to_solve: list[int] = []
        for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
            if fingerprint is not None:
                first = representative.get(fingerprint)
                if first is not None:
                    # An in-batch duplicate: resolved from the memo layer
                    # (and counted as a hit) once its representative solves.
                    followers.setdefault(first, []).append(index)
                    continue
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    count, method = cached
                    results[index] = JobResult(
                        problem=job.problem,
                        count=count,
                        method=method,
                        seconds=0.0,
                        label=job.label,
                        cache_hit=True,
                        fingerprint=fingerprint,
                    )
                    continue
                representative[fingerprint] = index
            to_solve.append(index)

        solved = self._execute([jobs[index] for index in to_solve])
        for index, result in zip(to_solve, solved):
            result.fingerprint = fingerprints[index]
            results[index] = result
            if result.ok and fingerprints[index] is not None:
                assert result.count is not None and result.method is not None
                self.cache.put(
                    fingerprints[index],
                    result.count,
                    result.method,
                    instance=self._instance_of(jobs[index]),
                )

        for first, duplicate_indices in followers.items():
            source = results[first]
            assert source is not None
            for index in duplicate_indices:
                if source.ok:
                    # Served by the memo layer: record the hit.
                    self.cache.get(fingerprints[index])  # type: ignore[arg-type]
                    results[index] = JobResult(
                        problem=source.problem,
                        count=source.count,
                        method=source.method,
                        seconds=0.0,
                        label=jobs[index].label,
                        cache_hit=True,
                        fingerprint=fingerprints[index],
                    )
                    continue
                # The representative failed, but a duplicate instance may
                # still succeed under its own method/budget (those knobs
                # are not part of the fingerprint): solve it for real.
                result = execute_job(jobs[index], self.cache)
                result.fingerprint = fingerprints[index]
                results[index] = result
                if result.ok and fingerprints[index] is not None:
                    assert result.count is not None
                    assert result.method is not None
                    self.cache.put(
                        fingerprints[index],
                        result.count,
                        result.method,
                        instance=self._instance_of(jobs[index]),
                    )
                    # Remaining duplicates are served from this success.
                    source = result

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # -- execution ---------------------------------------------------------

    def _instance_of(self, job: CountJob) -> str | None:
        """Circuit-store key linking a memo entry to its instance."""
        return instance_fingerprint_of(job) if needs_circuit(job) else None

    def _execute(self, jobs: Sequence[CountJob]) -> list[JobResult]:
        if self.workers <= 1 or len(jobs) <= 1:
            return [execute_job(job, self.cache) for job in jobs]

        parallel: list[int] = []
        serial: list[int] = []
        for index, job in enumerate(jobs):
            # Circuit-backed jobs stay in the parent, where the circuit
            # store lives; a worker process could never share the compile.
            if needs_circuit(job) or not _picklable(job):
                serial.append(index)
            else:
                parallel.append(index)
        if len(parallel) <= 1:
            return [execute_job(job, self.cache) for job in jobs]

        results: list[JobResult | None] = [None] * len(jobs)
        processes = min(self.workers, len(parallel))
        try:
            with multiprocessing.get_context().Pool(processes) as pool:
                solved = pool.map(
                    execute_job,
                    [jobs[index] for index in parallel],
                    chunksize=1,
                )
        except Exception:
            # A job the cheap picklability screen admitted failed to
            # serialize mid-dispatch (e.g. an exotic constant inside a
            # database).  Solvers are deterministic and approx jobs are
            # seeded, so re-running the whole slice serially is safe.
            solved = [execute_job(jobs[index], self.cache) for index in parallel]
        for index, result in zip(parallel, solved):
            results[index] = result
        for index in serial:
            results[index] = execute_job(jobs[index], self.cache)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]


def _query_is_value_type(query: object) -> bool:
    if query is None or isinstance(query, (BCQ, UCQ)):
        return True
    if isinstance(query, Negation):
        return _query_is_value_type(query.inner)
    return False


def _picklable(job: CountJob) -> bool:
    """Cheap screen for pool dispatch.

    Jobs over syntactic queries are plain value objects and always pickle;
    only opaque queries (:class:`CustomQuery` and friends, which may close
    over lambdas) pay an actual serialization test.
    """
    if _query_is_value_type(job.query):
        return True
    try:
        pickle.dumps(job)
    except Exception:  # pickle raises a zoo of error types
        return False
    return True


def run_batch(
    jobs: Iterable[CountJob],
    workers: int | None = None,
    cache: CountCache | None = None,
) -> list[JobResult]:
    """One-shot convenience wrapper around :class:`BatchEngine`."""
    return BatchEngine(workers=workers, cache=cache).run(list(jobs))
