"""Cross-job memoization keyed on canonical instance fingerprints.

Three stores live side by side:

* the **answer memo** — ``fingerprint -> (count, resolved method)`` pairs,
  one per distinct *question*.  Answers are tiny; an optional
  ``max_entries`` bound turns the memo into an LRU;
* the **circuit slot** — ``instance fingerprint -> compiled circuit``
  (:class:`~repro.compile.backend.ValuationCircuit` /
  :class:`~repro.compile.backend.CompletionCircuit`), one per distinct
  *instance*.  Circuits are the expensive artifacts the batch engine
  reuses across question modes (count, weighted count, marginals,
  samples), and the only part of the cache whose memory matters: every
  stored circuit is accounted at its estimated byte size, and an optional
  ``max_circuit_bytes`` bound evicts least-recently-used circuits —
  **together with every memo entry derived from them**, so a bounded
  cache never serves an answer whose provenance it already dropped.
  Circuits derived from a cached parent by delta conditioning record the
  parent link: evicting a parent drops its derived children too (a
  conditioned circuit shares structure and provenance with its parent),
  and :meth:`CountCache.get_ancestor_circuit` walks a child's ancestor
  chain so a fingerprint miss can still be answered by conditioning a
  cached ancestor (tallied as ``parent_chain_hits``);
* the **component store** — a small LRU of compiled clause-component
  programs keyed by :func:`~repro.compile.lineage.component_key`.
  Insert/delete deltas recompile only the components their clauses
  touched; everything else splices from here.

``stats()`` reports all three; ``repro-count batch --cache-mb`` is the
CLI surface of the byte bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

#: Default bound of the clause-component program store (entries).
DEFAULT_MAX_COMPONENTS = 512


class CountCache:
    """LRU answer memo plus byte-bounded circuit store, with statistics."""

    def __init__(
        self,
        max_entries: int | None = None,
        max_circuit_bytes: int | None = None,
        max_components: int | None = DEFAULT_MAX_COMPONENTS,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        if max_circuit_bytes is not None and max_circuit_bytes < 0:
            raise ValueError("max_circuit_bytes must be >= 0 (or None)")
        if max_components is not None and max_components < 0:
            raise ValueError("max_components must be >= 0 (or None)")
        self._entries: OrderedDict[str, tuple[Any, str]] = OrderedDict()
        self._max_entries = max_entries
        self._max_circuit_bytes = max_circuit_bytes
        self._max_components = max_components
        # instance fingerprint -> (circuit, bytes); LRU order.
        self._circuits: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        # links for joint eviction: memo entry <-> owning instance.
        self._entry_instance: dict[str, str] = {}
        self._instance_entries: dict[str, set[str]] = {}
        # delta provenance links: child instance <-> parent instance.
        self._circuit_parent: dict[str, str] = {}
        self._circuit_children: dict[str, set[str]] = {}
        # clause-component programs: component key -> program entry.
        self._components: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.circuit_hits = 0
        self.circuit_misses = 0
        self.circuit_evictions = 0
        self.circuit_bytes = 0
        self.worker_circuits = 0
        self.parent_chain_hits = 0
        self.component_hits = 0
        self.component_misses = 0

    # -- answer memo -------------------------------------------------------

    def get(self, fingerprint: str) -> tuple[Any, str] | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(
        self,
        fingerprint: str,
        count: Any,
        method: str,
        instance: str | None = None,
    ) -> None:
        """Memoize one answer; ``instance`` ties it to a cached circuit.

        Linked answers are dropped when their circuit is evicted, and an
        answer whose circuit is already gone (evicted mid-batch, or too
        large for the bound in the first place) is not memoized at all —
        the bound on circuit memory is also a bound on how much derived
        state the cache may serve, and the two stores move together.
        """
        if instance is not None and instance not in self._circuits:
            self._entries.pop(fingerprint, None)
            self._unlink_entry(fingerprint)
            return
        self._entries[fingerprint] = (count, method)
        self._entries.move_to_end(fingerprint)
        self._unlink_entry(fingerprint)
        if instance is not None:
            self._entry_instance[fingerprint] = instance
            self._instance_entries.setdefault(instance, set()).add(fingerprint)
        if (
            self._max_entries is not None
            and len(self._entries) > self._max_entries
        ):
            evicted, _value = self._entries.popitem(last=False)
            self._unlink_entry(evicted)

    def _unlink_entry(self, fingerprint: str) -> None:
        instance = self._entry_instance.pop(fingerprint, None)
        if instance is not None:
            siblings = self._instance_entries.get(instance)
            if siblings is not None:
                siblings.discard(fingerprint)
                if not siblings:
                    del self._instance_entries[instance]

    # -- circuit slot ------------------------------------------------------

    def has_circuit(self, instance: str) -> bool:
        """Whether a circuit is cached, without touching LRU order or
        hit/miss statistics (the engine's dispatch planning peek)."""
        return instance in self._circuits

    def get_circuit(self, instance: str) -> Any | None:
        """The compiled circuit for an instance fingerprint, if cached."""
        cached = self._circuits.get(instance)
        if cached is None:
            self.circuit_misses += 1
            return None
        self._circuits.move_to_end(instance)
        self.circuit_hits += 1
        return cached[0]

    def get_ancestor_circuit(
        self, ancestry: Sequence[str]
    ) -> tuple[str, Any] | None:
        """First cached circuit along a delta ancestor chain.

        ``ancestry`` lists instance fingerprints nearest-ancestor first
        (parent, grandparent, ...).  A hit counts as a ``parent_chain``
        hit — the incremental layer then applies the missing delta
        suffix to the returned circuit instead of recompiling.
        """
        for fingerprint in ancestry:
            cached = self._circuits.get(fingerprint)
            if cached is not None:
                self._circuits.move_to_end(fingerprint)
                self.parent_chain_hits += 1
                return fingerprint, cached[0]
        return None

    def put_circuit(
        self,
        instance: str,
        circuit: Any,
        from_worker: bool = False,
        parent: str | None = None,
    ) -> None:
        """Store a compiled circuit, evicting LRU circuits past the bound.

        The circuit must expose ``memory_bytes()``.  A circuit alone
        larger than the bound is not stored at all (storing it would only
        evict everything else and then itself).  Evicting a circuit also
        drops the memo entries linked to its instance — and, recursively,
        every circuit derived from it (``parent`` records that link when
        the incremental layer installs a conditioned/respliced child).
        ``from_worker`` marks an artifact compiled in a worker process
        and installed by the parent (tallied separately in :meth:`stats`).
        """
        size = int(circuit.memory_bytes())
        if (
            self._max_circuit_bytes is not None
            and size > self._max_circuit_bytes
        ):
            return
        previous = self._circuits.pop(instance, None)
        if previous is not None:
            self.circuit_bytes -= previous[1]
        self._circuits[instance] = (circuit, size)
        if parent is not None and parent in self._circuits:
            self._circuit_parent[instance] = parent
            self._circuit_children.setdefault(parent, set()).add(instance)
        if from_worker:
            self.worker_circuits += 1
        self.circuit_bytes += size
        if self._max_circuit_bytes is not None:
            while (
                self.circuit_bytes > self._max_circuit_bytes
                and len(self._circuits) > 1
            ):
                if not self._evict_oldest_circuit(keep=instance):
                    break

    def _evict_oldest_circuit(self, keep: str | None = None) -> bool:
        """Evict the oldest circuit tree not protecting ``keep``.

        ``keep`` and its ancestors are protected — evicting an ancestor
        would take the just-inserted child down with it.  Returns whether
        anything was evicted.
        """
        protected = set()
        node = keep
        while node is not None and node not in protected:
            protected.add(node)
            node = self._circuit_parent.get(node)
        for candidate in self._circuits:
            if candidate not in protected:
                self._drop_circuit_tree(candidate)
                return True
        return False

    def _drop_circuit_tree(self, instance: str) -> None:
        """Drop a circuit, its derived descendants, and linked answers."""
        stack = [instance]
        while stack:
            fingerprint = stack.pop()
            entry = self._circuits.pop(fingerprint, None)
            if entry is None:
                continue
            self.circuit_bytes -= entry[1]
            self.circuit_evictions += 1
            stack.extend(self._circuit_children.pop(fingerprint, ()))
            parent = self._circuit_parent.pop(fingerprint, None)
            if parent is not None:
                siblings = self._circuit_children.get(parent)
                if siblings is not None:
                    siblings.discard(fingerprint)
                    if not siblings:
                        del self._circuit_children[parent]
            for linked in self._instance_entries.pop(fingerprint, set()):
                self._entries.pop(linked, None)
                self._entry_instance.pop(linked, None)

    # -- component store ---------------------------------------------------

    def get_component(self, key: tuple) -> dict | None:
        """A cached clause-component program, LRU-touched on hit."""
        entry = self._components.get(key)
        if entry is None:
            self.component_misses += 1
            return None
        self._components.move_to_end(key)
        self.component_hits += 1
        return entry

    def put_component(self, key: tuple, entry: dict) -> None:
        """Store one compiled clause-component program (bounded LRU)."""
        if self._max_components == 0:
            return
        self._components[key] = entry
        self._components.move_to_end(key)
        if (
            self._max_components is not None
            and len(self._components) > self._max_components
        ):
            self._components.popitem(last=False)

    # -- statistics --------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of memo lookups answered from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """One JSON-ready snapshot of all three stores."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "circuits": len(self._circuits),
            "circuit_bytes": self.circuit_bytes,
            "circuit_hits": self.circuit_hits,
            "circuit_misses": self.circuit_misses,
            "circuit_evictions": self.circuit_evictions,
            "worker_circuits": self.worker_circuits,
            "parent_chain_hits": self.parent_chain_hits,
            "components": len(self._components),
            "component_hits": self.component_hits,
            "component_misses": self.component_misses,
            "max_circuit_bytes": self._max_circuit_bytes,
        }

    def publish(self, registry: Any) -> None:
        """Mirror :meth:`stats` into an observability registry
        (:class:`repro.obs.Metrics`) as ``engine.cache.*`` gauges —
        lifetime totals, so gauges (last value wins) are the right
        instrument; the engine republishes after every batch."""
        for key, value in self.stats().items():
            registry.gauge("engine.cache.%s" % key).set(value)

    def clear(self) -> None:
        self._entries.clear()
        self._circuits.clear()
        self._entry_instance.clear()
        self._instance_entries.clear()
        self._circuit_parent.clear()
        self._circuit_children.clear()
        self._components.clear()
        self.hits = 0
        self.misses = 0
        self.circuit_hits = 0
        self.circuit_misses = 0
        self.circuit_evictions = 0
        self.circuit_bytes = 0
        self.worker_circuits = 0
        self.parent_chain_hits = 0
        self.component_hits = 0
        self.component_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __repr__(self) -> str:
        return "CountCache(%d entries, %d hits, %d misses, %d circuits, %d circuit bytes)" % (
            len(self._entries),
            self.hits,
            self.misses,
            len(self._circuits),
            self.circuit_bytes,
        )
