"""Cross-job memoization keyed on canonical instance fingerprints.

The cache stores *answers* — ``(count, resolved method)`` pairs — never
databases or queries, so it stays small even for huge instances.  An
optional ``max_entries`` bound turns it into an LRU; the default is
unbounded, which suits benchmark batches where the working set is the whole
workload.
"""

from __future__ import annotations

from collections import OrderedDict


class CountCache:
    """LRU map from fingerprint to ``(count, method)`` with hit statistics."""

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self._entries: OrderedDict[str, tuple[int | float, str]] = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> tuple[int | float, str] | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return entry

    def put(
        self, fingerprint: str, count: int | float, method: str
    ) -> None:
        self._entries[fingerprint] = (count, method)
        self._entries.move_to_end(fingerprint)
        if (
            self._max_entries is not None
            and len(self._entries) > self._max_entries
        ):
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __repr__(self) -> str:
        return "CountCache(%d entries, %d hits, %d misses)" % (
            len(self._entries),
            self.hits,
            self.misses,
        )
