"""Batch counting engine: job descriptions, memoization, worker pool.

The engine turns the per-instance counting API of :mod:`repro.exact` and
:mod:`repro.approx` into a *service*: a stream of ``(database, query,
problem)`` jobs is deduplicated through a canonical-fingerprint cache
(:mod:`repro.engine.fingerprint`, :mod:`repro.engine.cache`) and the cache
misses are fanned out to a shared-nothing multiprocessing pool
(:mod:`repro.engine.pool`).  ``repro-count batch`` (the CLI) and
``benchmarks/harness.py`` are the two front doors.
"""

from repro.engine.cache import CountCache
from repro.engine.fingerprint import (
    fingerprint_db,
    fingerprint_delta,
    fingerprint_derivation,
    fingerprint_instance,
    fingerprint_job,
    fingerprint_query,
)
from repro.engine.incremental import (
    cached_ancestor,
    delta_chain,
    derive_instance_circuit,
)
from repro.engine.jobs import (
    CountJob,
    JobResult,
    execute_job,
    execute_job_capturing,
    instance_db,
    instance_fingerprint_of,
    needs_circuit,
)
from repro.engine.pool import BatchEngine, run_batch

__all__ = [
    "BatchEngine",
    "CountCache",
    "CountJob",
    "JobResult",
    "cached_ancestor",
    "delta_chain",
    "derive_instance_circuit",
    "execute_job",
    "execute_job_capturing",
    "fingerprint_db",
    "fingerprint_delta",
    "fingerprint_derivation",
    "fingerprint_instance",
    "fingerprint_job",
    "fingerprint_query",
    "instance_db",
    "instance_fingerprint_of",
    "needs_circuit",
    "run_batch",
]
