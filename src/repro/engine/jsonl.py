"""JSONL job files for ``repro-count batch``.

One JSON object per line; blank lines and ``#`` comment lines are skipped.
Recognized keys (only a database is mandatory)::

    {"problem": "val",            # val | comp | approx-val | val-weighted
                                  #   | marginals | sweep | update
                                  #   (default val)
     "db": "instance.idb",        # path, relative to the jobs file — or:
     "db_text": "domain a b\\nR(?n1, a)",   # inline database text
     "query": "R(x), S(x)",       # query text; omit for problem=comp
     "method": "auto",            # exact problems only
     "budget": 2000000,
     "epsilon": 0.1, "delta": 0.25, "seed": 0,   # approx-val only
     "weights": {"n1": {"a": 2, "b": 1}},   # val-weighted / marginals:
                                  # per-null value weights, null names as
                                  # in the database text (without the ?).
                                  # problem=sweep takes an *array* of such
                                  # tables (null for a default-weight row)
                                  # and answers one count per table.
     "deltas": [["resolve", "n1=a"],        # problem=update only: the
                ["insert", "R(a, b)"]],     # ordered delta chain, each
                                  # [kind, text] in the CLI flag syntax of
                                  # repro.io.databases.parse_delta
     "label": "my-job"}           # defaults to "job-<line number>"

Databases referenced by path are parsed once and shared across jobs, so a
thousand-job file over ten databases costs ten parses.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator, TextIO

from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term
from repro.engine.jobs import CountJob, JobResult
from repro.exact.brute import DEFAULT_BUDGET
from repro.io.databases import parse_database
from repro.io.queries import parse_query


class JobSyntaxError(ValueError):
    """Raised on a malformed job line."""


def read_jobs(handle: TextIO, base_dir: str = ".") -> Iterator[CountJob]:
    """Parse a JSONL job stream into :class:`CountJob` values."""
    db_cache: dict[str, IncompleteDatabase] = {}
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JobSyntaxError(
                "line %d: invalid JSON (%s)" % (line_number, exc)
            ) from exc
        if not isinstance(record, dict):
            raise JobSyntaxError(
                "line %d: expected a JSON object" % line_number
            )
        try:
            yield _job_from_record(record, line_number, base_dir, db_cache)
        except JobSyntaxError:
            raise
        except (ValueError, OSError) as exc:
            raise JobSyntaxError(
                "line %d: %s" % (line_number, exc)
            ) from exc


def _job_from_record(
    record: dict,
    line_number: int,
    base_dir: str,
    db_cache: dict[str, IncompleteDatabase],
) -> CountJob:
    if ("db" in record) == ("db_text" in record):
        raise JobSyntaxError(
            "line %d: provide exactly one of 'db' (path) or 'db_text'"
            % line_number
        )
    if "db" in record:
        path = os.path.join(base_dir, record["db"])
        db = db_cache.get(path)
        if db is None:
            with open(path, "r", encoding="utf-8") as handle:
                db = parse_database(handle.read())
            db_cache[path] = db
    else:
        db = parse_database(record["db_text"])

    query_text = record.get("query")
    query = parse_query(query_text) if query_text else None
    weights: object = record.get("weights")
    if weights is not None:
        if record.get("problem") == "sweep":
            if not isinstance(weights, list):
                raise JobSyntaxError(
                    "line %d: 'sweep' weights must be an array of per-null "
                    "weight tables" % line_number
                )
            weights = [
                None if row is None else parse_weights(
                    row, db, "line %d, weights[%d]" % (line_number, position)
                )
                for position, row in enumerate(weights)
            ]
        else:
            weights = parse_weights(weights, db, "line %d" % line_number)
    deltas: list = []
    raw_deltas = record.get("deltas")
    if raw_deltas is not None:
        from repro.io.databases import DatabaseSyntaxError, parse_delta

        if not isinstance(raw_deltas, list):
            raise JobSyntaxError(
                "line %d: 'deltas' must be an array of [kind, text] pairs"
                % line_number
            )
        for position, pair in enumerate(raw_deltas):
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not all(isinstance(part, str) for part in pair)
            ):
                raise JobSyntaxError(
                    "line %d: deltas[%d] must be a [kind, text] pair of "
                    "strings" % (line_number, position)
                )
            try:
                deltas.append(parse_delta(pair[0], pair[1]))
            except DatabaseSyntaxError as exc:
                raise JobSyntaxError(
                    "line %d: deltas[%d]: %s" % (line_number, position, exc)
                ) from exc
    return CountJob(
        problem=record.get("problem", "val"),
        db=db,
        query=query,
        method=record.get("method", "auto"),
        budget=record.get("budget", DEFAULT_BUDGET),
        epsilon=record.get("epsilon", 0.1),
        delta=record.get("delta", 0.25),
        seed=record.get("seed", 0),
        weights=weights,  # type: ignore[arg-type]  # parsed above
        deltas=tuple(deltas),
        label=record.get("label", "job-%d" % line_number),
    )


#: Keys of a serialized result record (see :meth:`JobResult.to_dict`);
#: ``meta`` appears only when non-empty.  The schema-stability test pins
#: this tuple and the shape of ``meta['metrics']``.
RESULT_KEYS = (
    "label", "problem", "count", "method", "seconds", "cache_hit", "error",
)


def write_results(handle: TextIO, results: "Iterable[JobResult]") -> int:
    """Write one JSON line per result (the ``batch --out`` format).

    The record is :meth:`JobResult.to_dict` verbatim, so the per-job
    observability payload (``meta['metrics']``: phase seconds, solver
    counters, queue share) rides along.  Returns the record count.
    """
    written = 0
    for result in results:
        handle.write(json.dumps(result.to_dict(), default=str) + "\n")
        written += 1
    return written


def read_results(handle: TextIO) -> "Iterator[JobResult]":
    """Parse a result stream :func:`write_results` wrote back into
    :class:`JobResult` values (counts stay as JSON left them: exact ints
    for the counting problems, floats where serialization rounded)."""
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise JobSyntaxError(
                "line %d: invalid JSON (%s)" % (line_number, exc)
            ) from exc
        if not isinstance(record, dict):
            raise JobSyntaxError(
                "line %d: expected a JSON object" % line_number
            )
        missing = [key for key in RESULT_KEYS if key not in record]
        if missing:
            raise JobSyntaxError(
                "line %d: result record is missing %s"
                % (line_number, ", ".join(missing))
            )
        yield JobResult(
            problem=record["problem"],
            count=record["count"],
            method=record["method"],
            seconds=record["seconds"],
            label=record["label"],
            cache_hit=record["cache_hit"],
            error=record["error"],
            meta=record.get("meta", {}),
        )


def parse_weights(
    record: object, db: IncompleteDatabase, context: str
) -> dict[Null, dict[Term, object]]:
    """Resolve a ``{null name: {value: weight}}`` record against ``db``.

    JSON object keys are strings, so nulls are matched by their label's
    ``str`` form and domain values likewise — which covers everything the
    text format produces.  Coverage of each domain is validated downstream
    by :func:`repro.db.valuation.resolve_null_weights`.  ``context``
    prefixes error messages (a job-file line, a CLI flag).
    """
    if not isinstance(record, dict):
        raise JobSyntaxError(
            "%s: weights must be an object of per-null tables" % context
        )
    known = {repr(null.label): null for null in db.nulls}
    known.update({str(null.label): null for null in db.nulls})
    weights: dict[Null, dict[Term, object]] = {}
    for name, table in record.items():
        null = known.get(name)
        if null is None:
            raise JobSyntaxError(
                "%s: weights name unknown null %r (known: %s)"
                % (context, name, ", ".join(sorted(known)) or "none")
            )
        if not isinstance(table, dict):
            raise JobSyntaxError(
                "%s: weights for %r must be a {value: weight} object"
                % (context, name)
            )
        by_text = {str(value): value for value in db.domain_of(null)}
        resolved: dict[Term, object] = {}
        for value_text, weight in table.items():
            value = by_text.get(value_text)
            if value is None:
                raise JobSyntaxError(
                    "%s: weight value %r is outside the domain of %r"
                    % (context, value_text, name)
                )
            resolved[value] = weight
        weights[null] = resolved
    return weights
