"""CSV ingestion: turn tables with missing values into incomplete databases.

Real data arrives as CSV with missing cells.  ``load_csv_relation`` maps a
CSV table to facts over one relation, turning marked cells into labeled
nulls:

* a cell equal to ``null_marker`` (default ``"NULL"``) becomes a *fresh*
  null — repeated markers are independent unknowns (Codd style);
* a cell of the form ``NULL:label`` reuses the null named ``label`` —
  correlated unknowns (naive-table style, e.g. "these two rows hide the
  same salary").

The caller supplies the finite domain(s) the unknowns range over, matching
the paper's finitary semantics.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping

from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term


def load_csv_relation(
    source: str | Iterable[str],
    relation: str,
    domain: Iterable[Term] | None = None,
    column_domains: Mapping[int, Iterable[Term]] | None = None,
    null_marker: str = "NULL",
    has_header: bool = False,
) -> IncompleteDatabase:
    """Load one relation from CSV text (or an iterable of lines).

    Exactly one of ``domain`` (uniform) or ``column_domains`` (per-column,
    producing a non-uniform database where each null takes its column's
    domain) must be given.  Values are kept as strings except unmarked
    cells that parse as integers, which become ints.
    """
    if (domain is None) == (column_domains is None):
        raise ValueError(
            "provide exactly one of `domain` or `column_domains`"
        )
    if isinstance(source, str):
        reader = csv.reader(io.StringIO(source))
    else:
        reader = csv.reader(source)

    rows = list(reader)
    if has_header and rows:
        rows = rows[1:]

    facts: list[Fact] = []
    null_domains: dict[Null, set[Term]] = {}
    fresh_counter = 0

    def cell_domain(column: int) -> set[Term]:
        if column_domains is not None:
            try:
                return set(column_domains[column])
            except KeyError:
                raise ValueError(
                    "no domain declared for column %d" % column
                ) from None
        assert domain is not None
        return set(domain)

    for row_number, row in enumerate(rows):
        if not row:
            continue
        terms: list[Term] = []
        for column, cell in enumerate(row):
            cell = cell.strip()
            if cell == null_marker:
                fresh_counter += 1
                null = Null("csv%d" % fresh_counter)
                null_domains[null] = cell_domain(column)
                terms.append(null)
            elif cell.startswith(null_marker + ":"):
                label = cell[len(null_marker) + 1 :]
                null = Null(label)
                wanted = cell_domain(column)
                if null in null_domains and null_domains[null] != wanted:
                    # A shared null crossing columns takes the intersection
                    # of the column domains: it must be valid in both.
                    null_domains[null] &= wanted
                else:
                    null_domains.setdefault(null, wanted)
                terms.append(null)
            else:
                try:
                    terms.append(int(cell))
                except ValueError:
                    terms.append(cell)
        facts.append(Fact(relation, terms))

    if domain is not None:
        return IncompleteDatabase.uniform(facts, domain)
    return IncompleteDatabase(facts, dom=null_domains)
