"""Parsing and formatting incomplete databases.

Format, one declaration or fact per line::

    # comments and blank lines are ignored
    domain a b c 1 2        # uniform domain (at most one such line)
    null n1: a b            # per-null domain (non-uniform databases)
    null n2: b c
    R(a, ?n1)
    S(?n1, 'hello world', 42)

Terms inside facts: ``?name`` is a null; ``'quoted'`` is a string constant
(spaces allowed); a bare integer is an int constant; any other bare token
is a string constant.  A file must declare either a ``domain`` line
(uniform) or a ``null`` line for every null used (non-uniform), not both.
"""

from __future__ import annotations

import re

from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null, Term, is_null

_FACT_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$")
_TERM_SPLIT_RE = re.compile(r",(?=(?:[^']*'[^']*')*[^']*$)")


class DatabaseSyntaxError(ValueError):
    """Raised on malformed database text."""


def _parse_value(token: str) -> Term:
    token = token.strip()
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if not token:
        raise DatabaseSyntaxError("empty value")
    return token


def _parse_fact_term(token: str) -> Term:
    token = token.strip()
    if token.startswith("?"):
        name = token[1:].strip()
        if not name:
            raise DatabaseSyntaxError("null marker '?' without a name")
        return Null(name)
    return _parse_value(token)


def parse_term(text: str) -> Term:
    """Parse one term: ``?name`` is a null, otherwise a constant
    (``'quoted'`` string, bare integer, or bare string token)."""
    return _parse_fact_term(text)


def parse_fact(text: str) -> Fact:
    """Parse one ``R(t1, ..., tn)`` fact line (the file format's syntax)."""
    match = _FACT_RE.match(text)
    if not match:
        raise DatabaseSyntaxError("cannot parse fact %r" % text)
    relation, body = match.group(1), match.group(2)
    return Fact(
        relation,
        [_parse_fact_term(part) for part in _TERM_SPLIT_RE.split(body)],
    )


def parse_delta(kind: str, text: str):
    """Parse one update-delta argument (the ``repro-count update`` flags).

    * ``resolve``:  ``n1=a`` — pin null ``n1`` to constant ``a``;
    * ``restrict``: ``n1=a,b`` — shrink ``n1``'s domain to ``{a, b}``;
    * ``insert``:   ``R(a, ?n3); S(b)`` — add facts (``;``-separated);
      new nulls declare domains with ``where n3: a b`` at the end;
    * ``delete``:   ``R(a, b)`` — remove facts (``;``-separated).
    """
    from repro.db.deltas import (
        DeleteFacts,
        InsertFacts,
        ResolveNull,
        RestrictDomain,
    )

    def null_of(token: str) -> Null:
        token = token.strip()
        if token.startswith("?"):
            token = token[1:]
        if not token:
            raise DatabaseSyntaxError("empty null name in delta %r" % text)
        return Null(token)

    if kind in ("resolve", "restrict"):
        if "=" not in text:
            raise DatabaseSyntaxError(
                "expected 'null=value%s', got %r"
                % (",..." if kind == "restrict" else "", text)
            )
        name, values = text.split("=", 1)
        if kind == "resolve":
            return ResolveNull(null_of(name), _parse_value(values))
        return RestrictDomain(
            null_of(name),
            frozenset(_parse_value(tok) for tok in values.split(",")),
        )
    if kind in ("insert", "delete"):
        body, _, declarations = text.partition(" where ")
        facts = frozenset(
            parse_fact(part) for part in body.split(";") if part.strip()
        )
        if not facts:
            raise DatabaseSyntaxError("no facts in delta %r" % text)
        if kind == "delete":
            if declarations:
                raise DatabaseSyntaxError(
                    "delete deltas take no 'where' domains: %r" % text
                )
            return DeleteFacts(facts)
        dom: dict[Null, frozenset] = {}
        for declaration in declarations.split(";"):
            declaration = declaration.strip()
            if not declaration:
                continue
            if ":" not in declaration:
                raise DatabaseSyntaxError(
                    "expected 'name: values' in %r" % declaration
                )
            name, values = declaration.split(":", 1)
            dom[null_of(name)] = frozenset(
                _parse_value(tok) for tok in values.split()
            )
        return InsertFacts(facts, dom=dom or None)
    raise DatabaseSyntaxError("unknown delta kind %r" % kind)


def parse_database(text: str) -> IncompleteDatabase:
    """Parse the text format into an :class:`IncompleteDatabase`."""
    uniform_domain: list[Term] | None = None
    null_domains: dict[Null, list[Term]] = {}
    facts: list[Fact] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("domain"):
            if uniform_domain is not None:
                raise DatabaseSyntaxError(
                    "line %d: duplicate domain declaration" % line_number
                )
            uniform_domain = [
                _parse_value(tok) for tok in line[len("domain") :].split()
            ]
            continue
        if line.startswith("null"):
            body = line[len("null") :]
            if ":" not in body:
                raise DatabaseSyntaxError(
                    "line %d: expected 'null name: values'" % line_number
                )
            name, values = body.split(":", 1)
            null = Null(name.strip())
            if null in null_domains:
                raise DatabaseSyntaxError(
                    "line %d: duplicate domain for %r" % (line_number, null)
                )
            null_domains[null] = [_parse_value(tok) for tok in values.split()]
            continue
        match = _FACT_RE.match(line)
        if not match:
            raise DatabaseSyntaxError(
                "line %d: cannot parse %r" % (line_number, line)
            )
        relation, body = match.group(1), match.group(2)
        terms = [
            _parse_fact_term(part) for part in _TERM_SPLIT_RE.split(body)
        ]
        facts.append(Fact(relation, terms))

    if uniform_domain is not None and null_domains:
        raise DatabaseSyntaxError(
            "declare either a uniform domain or per-null domains, not both"
        )
    if uniform_domain is not None:
        return IncompleteDatabase.uniform(facts, uniform_domain)
    return IncompleteDatabase(facts, dom=null_domains)


def _format_value(value: Term) -> str:
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", text):
        return text
    return "'%s'" % text


def _format_fact_term(term: Term) -> str:
    if is_null(term):
        return "?%s" % term.label
    return _format_value(term)


def format_database(db: IncompleteDatabase) -> str:
    """Round-trippable text form (header lines then sorted facts)."""
    lines: list[str] = []
    if db.is_uniform:
        lines.append(
            "domain %s"
            % " ".join(_format_value(v) for v in sorted(db.uniform_domain, key=repr))
        )
    else:
        for null in db.nulls:
            lines.append(
                "null %s: %s"
                % (
                    null.label,
                    " ".join(
                        _format_value(v)
                        for v in sorted(db.domain_of(null), key=repr)
                    ),
                )
            )
    for fact in sorted(db.facts):
        lines.append(
            "%s(%s)"
            % (
                fact.relation,
                ", ".join(_format_fact_term(t) for t in fact.terms),
            )
        )
    return "\n".join(lines) + "\n"
