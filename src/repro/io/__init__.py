"""Text and CSV tooling for incomplete databases and queries.

A small, regular text format keeps examples, docs and the CLI honest:

* queries: ``R(x, y), S(y)`` — comma-separated atoms, lowercase tokens are
  variables, quoted tokens/numbers are constants; ``|`` separates UCQ
  disjuncts; a leading ``!`` negates.
* databases: one fact per line (``R(a, ?n1)``), ``?name`` marks a null,
  with ``domain ...`` / ``null n : ...`` header lines declaring domains.
* CSV: each ``NULL``-marked cell becomes a null (``NULL:label`` shares a
  null across cells, producing naive tables).
"""

from repro.io.queries import format_query, parse_query
from repro.io.databases import format_database, parse_database
from repro.io.csv_loader import load_csv_relation

__all__ = [
    "format_query",
    "parse_query",
    "format_database",
    "parse_database",
    "load_csv_relation",
]
