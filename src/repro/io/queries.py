"""Parsing and formatting Boolean queries.

Grammar (whitespace-insensitive)::

    query    := [ '!' ] disjunct ( '|' disjunct )*
    disjunct := atom ( ',' atom )*
    atom     := NAME '(' term ( ',' term )* ')'
    term     := NAME            — a variable (identifier)
              | NUMBER          — an integer constant
              | "'" CHARS "'"   — a quoted string constant

Relation names start with an uppercase letter by convention but any
identifier is accepted; variables are identifiers too — the distinction is
positional (relation names precede ``(``).
"""

from __future__ import annotations

import re

from repro.core.query import Atom, BCQ, BooleanQuery, Const, Negation, UCQ

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")


class QuerySyntaxError(ValueError):
    """Raised on malformed query text."""


def _parse_term(token: str):
    token = token.strip()
    if not token:
        raise QuerySyntaxError("empty term")
    if token.startswith("'") and token.endswith("'") and len(token) >= 2:
        return Const(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return Const(int(token))
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return token  # a variable name (Atom coerces)
    raise QuerySyntaxError("cannot parse term %r" % token)


def _parse_disjunct(text: str) -> BCQ:
    atoms = []
    position = 0
    while position < len(text):
        match = _ATOM_RE.match(text, position)
        if not match:
            raise QuerySyntaxError(
                "expected an atom at %r" % text[position : position + 30]
            )
        relation, body = match.group(1), match.group(2)
        terms = [_parse_term(part) for part in body.split(",")]
        atoms.append(Atom(relation, terms))
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise QuerySyntaxError(
                    "expected ',' between atoms at %r" % text[position:]
                )
            position += 1
    if not atoms:
        raise QuerySyntaxError("a query needs at least one atom")
    return BCQ(atoms)


def parse_query(text: str) -> BooleanQuery:
    """Parse a query; returns a :class:`BCQ`, :class:`UCQ` or
    :class:`Negation` depending on the connectives present."""
    stripped = text.strip()
    negated = stripped.startswith("!")
    if negated:
        stripped = stripped[1:].strip()
    disjunct_texts = [part for part in stripped.split("|")]
    disjuncts = [_parse_disjunct(part) for part in disjunct_texts]
    inner: BooleanQuery = (
        disjuncts[0] if len(disjuncts) == 1 else UCQ(disjuncts)
    )
    return Negation(inner) if negated else inner


def _format_term(term) -> str:
    if isinstance(term, Const):
        if isinstance(term.value, int):
            return str(term.value)
        return "'%s'" % (term.value,)
    return term.name


def format_query(query: BooleanQuery) -> str:
    """Round-trippable text form of a query."""
    if isinstance(query, Negation):
        return "!%s" % format_query(query.inner)
    if isinstance(query, UCQ):
        return " | ".join(format_query(d) for d in query.disjuncts)
    if isinstance(query, BCQ):
        return ", ".join(
            "%s(%s)"
            % (atom.relation, ", ".join(_format_term(t) for t in atom.terms))
            for atom in query.atoms
        )
    raise TypeError("cannot format %s" % type(query).__name__)
