"""``python -m repro`` dispatches to the CLI."""

import sys

from repro.cli import main

# The guard matters: `repro batch` fans out to a multiprocessing pool, and
# spawn-based platforms (macOS, Windows) re-import __main__ in each worker.
if __name__ == "__main__":
    sys.exit(main())
