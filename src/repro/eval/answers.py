"""Non-Boolean queries: answer tuples, supports, and best answers.

The paper restricts itself to Boolean queries but motivates the counting
problems through Libkin's *best answers* [37] (Section 7, and "study
counting problems for non-Boolean queries" in the future-work list).  This
module implements that extension:

* a conjunctive query with **free variables** is an ordinary
  :class:`~repro.core.query.BCQ` plus a tuple of distinguished variables;
* an *answer candidate* is a tuple of constants; its **support set** is
  the set of valuations ν with ``ā ∈ q(ν(D))``;
* ``ā`` is a *better answer* than ``b̄`` when its support set contains
  b̄'s; *best answers* are the maximal elements of that preorder;
* the **counting refinement** of the paper ranks answers by the *size* of
  their support instead.

The example highlighted in Section 7 — a best answer need not have
maximum support, and counting distinguishes valuation- from
completion-support while the best-answer order cannot — is exercised in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Sequence

from repro.core.query import BCQ, Var
from repro.db.database import Database
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import (
    apply_valuation,
    count_total_valuations,
    iter_valuations,
)
from repro.eval.homomorphism import find_homomorphism


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A CQ ``q(x̄)``: a BCQ body plus distinguished free variables."""

    body: BCQ
    free: tuple[Var, ...]

    def __post_init__(self) -> None:
        body_vars = set(self.body.variables())
        for variable in self.free:
            if variable not in body_vars:
                raise ValueError(
                    "free variable %r does not occur in the body" % (variable,)
                )
        if len(set(self.free)) != len(self.free):
            raise ValueError("free variables must be distinct")

    @classmethod
    def make(cls, body: BCQ, free_names: Sequence[str]) -> "ConjunctiveQuery":
        return cls(body, tuple(Var(name) for name in free_names))


def answers_on(query: ConjunctiveQuery, database: Database) -> set[tuple]:
    """``q(D)`` on a complete database: all images of the free variables.

    Backtracking over homomorphisms via repeated Boolean checks with the
    free variables pinned — simple and adequate for the small instances
    this research code targets.
    """
    domain = sorted(database.active_domain(), key=repr)
    found: set[tuple] = set()
    for values in product(domain, repeat=len(query.free)):
        pinned = _pin(query, values)
        if find_homomorphism(pinned, database) is not None:
            found.add(tuple(values))
    return found


def _pin(query: ConjunctiveQuery, values: tuple) -> BCQ:
    """The Boolean query q(ā): substitute constants for free variables."""
    from repro.core.query import Atom, Const

    substitution = dict(zip(query.free, values))
    atoms = []
    for atom in query.body.atoms:
        terms = [
            Const(substitution[t]) if isinstance(t, Var) and t in substitution
            else t
            for t in atom.terms
        ]
        atoms.append(Atom(atom.relation, terms))
    return BCQ(atoms)


@dataclass(frozen=True)
class AnswerReport:
    """Support data for one candidate answer tuple."""

    answer: tuple
    #: number of valuations whose completion contains the answer.
    valuation_support: int
    #: number of distinct completions containing the answer.
    completion_support: int
    #: indices (into the valuation enumeration) — kept as a frozenset for
    #: the better-answer containment order.
    support_set: frozenset[int]


def candidate_answers(
    query: ConjunctiveQuery, db: IncompleteDatabase
) -> set[tuple]:
    """Answers of ``q`` on *some* completion (possible answers)."""
    found: set[tuple] = set()
    for valuation in iter_valuations(db):
        found |= answers_on(query, apply_valuation(db, valuation))
    return found


def answer_reports(
    query: ConjunctiveQuery, db: IncompleteDatabase
) -> dict[tuple, AnswerReport]:
    """Support sets and counts for every possible answer of ``q`` on ``D``.

    Exhaustive over valuations — the ground truth the paper's counting
    problems generalize (each fixed ``ā`` turns into the Boolean problem
    ``#Val(q(ā))``).
    """
    supports: dict[tuple, set[int]] = {}
    completions_of: dict[tuple, set[Database]] = {}
    for index, valuation in enumerate(iter_valuations(db)):
        completion = apply_valuation(db, valuation)
        for answer in answers_on(query, completion):
            supports.setdefault(answer, set()).add(index)
            completions_of.setdefault(answer, set()).add(completion)
    return {
        answer: AnswerReport(
            answer=answer,
            valuation_support=len(indices),
            completion_support=len(completions_of[answer]),
            support_set=frozenset(indices),
        )
        for answer, indices in supports.items()
    }


def is_better_answer(
    left: AnswerReport, right: AnswerReport
) -> bool:
    """Libkin's order: ``left`` is at least as good as ``right`` when every
    valuation supporting ``right`` also supports ``left``."""
    return right.support_set <= left.support_set


def best_answers(
    query: ConjunctiveQuery, db: IncompleteDatabase
) -> list[tuple]:
    """The maximal answers under the better-answer preorder."""
    reports = answer_reports(query, db)
    best: list[tuple] = []
    for answer, report in reports.items():
        dominated = any(
            other != answer
            and report.support_set < reports[other].support_set
            for other in reports
        )
        if not dominated:
            best.append(answer)
    return sorted(best, key=repr)


def answers_by_support(
    query: ConjunctiveQuery, db: IncompleteDatabase, by: str = "valuations"
) -> list[tuple[tuple, Fraction]]:
    """The paper's counting refinement: rank answers by support fraction.

    ``by`` is ``"valuations"`` or ``"completions"``.  Unlike best answers,
    this is a *total* order (ties aside) and quantifies how close each
    answer is to being certain.
    """
    if by not in ("valuations", "completions"):
        raise ValueError("by must be 'valuations' or 'completions'")
    reports = answer_reports(query, db)
    total_valuations = count_total_valuations(db)
    total_completions = len(
        {apply_valuation(db, v) for v in iter_valuations(db)}
    )
    ranked = []
    for answer, report in reports.items():
        if by == "valuations":
            fraction = Fraction(report.valuation_support, total_valuations)
        else:
            fraction = Fraction(report.completion_support, total_completions)
        ranked.append((answer, fraction))
    ranked.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return ranked
