"""Certainty, possibility and support of a query on an incomplete database.

The introduction motivates the counting problems as refinements of the
classical ``Certainty(q)`` decision problem: when ``q`` is not certain, the
*fraction* of valuations (or completions) satisfying ``q`` measures "how
close ``q`` is to being certain".  These helpers compute the classical
notions and the two support ratios by exhaustive enumeration (ground truth
for small inputs; the exact/approximate counters of :mod:`repro.exact` and
:mod:`repro.approx` are the scalable routes).
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.query import BooleanQuery
from repro.db.incomplete import IncompleteDatabase
from repro.db.valuation import (
    apply_valuation,
    count_total_valuations,
    iter_completions,
    iter_valuations,
)
from repro.eval.evaluate import evaluate


def is_certain(query: BooleanQuery, db: IncompleteDatabase) -> bool:
    """True when *every* completion of ``db`` satisfies ``query``.

    Equivalently every valuation, since the two quantify over the same set
    of completed databases.
    """
    return all(
        evaluate(query, apply_valuation(db, valuation))
        for valuation in iter_valuations(db)
    )


def is_possible(query: BooleanQuery, db: IncompleteDatabase) -> bool:
    """True when *some* completion of ``db`` satisfies ``query``."""
    return any(
        evaluate(query, apply_valuation(db, valuation))
        for valuation in iter_valuations(db)
    )


def valuation_support(
    query: BooleanQuery, db: IncompleteDatabase
) -> Fraction:
    """``#Val(q)(D) / #valuations(D)`` as an exact rational.

    This is Libkin's ``μ``-measure for the fixed domain of ``D``
    (Section 7); support 1 means certainty, support 0 impossibility.
    """
    total = count_total_valuations(db)
    if total == 0:
        raise ValueError("database admits no valuations (empty null domain)")
    satisfying = sum(
        1
        for valuation in iter_valuations(db)
        if evaluate(query, apply_valuation(db, valuation))
    )
    return Fraction(satisfying, total)


def completion_support(
    query: BooleanQuery, db: IncompleteDatabase
) -> Fraction:
    """``#Comp(q)(D) / #completions(D)`` as an exact rational."""
    total = 0
    satisfying = 0
    for completion in iter_completions(db):
        total += 1
        if evaluate(query, completion):
            satisfying += 1
    if total == 0:
        raise ValueError("database admits no completions (empty null domain)")
    return Fraction(satisfying, total)
