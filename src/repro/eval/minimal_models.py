"""Empirical checks of the Prop. 5.2 hypotheses.

Prop. 5.2 places ``#Val(q)`` in SpanL (hence FPRAS, via Theorem 5.1) when
``q`` is monotone, has model checking in nondeterministic linear space, and
has *bounded minimal models*.  These helpers verify the first and third
hypotheses on concrete databases, and enumerate minimal models — useful both
for tests and for exploring which custom queries qualify.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.core.query import BooleanQuery
from repro.db.database import Database
from repro.eval.evaluate import evaluate


def minimal_models(
    query: BooleanQuery, database: Database
) -> list[Database]:
    """All minimal sub-databases ``D' ⊆ D`` with ``D' |= q``.

    Exhaustive over subsets in increasing size; a found model excludes its
    supersets.  Exponential — intended for small test databases.
    """
    facts = sorted(database.facts)
    found: list[frozenset] = []
    for size in range(len(facts) + 1):
        for subset in combinations(facts, size):
            subset_facts = frozenset(subset)
            if any(model <= subset_facts for model in found):
                continue
            if evaluate(query, Database(subset_facts)):
                found.append(subset_facts)
    return [Database(model) for model in found]


def has_bounded_minimal_models(
    query: BooleanQuery, database: Database, bound: int
) -> bool:
    """Do all minimal models of ``q`` inside ``database`` have <= ``bound``
    facts?  (The ``C_q`` condition of Section 5.1, checked on one input.)"""
    return all(len(model) <= bound for model in minimal_models(query, database))


def is_monotone_on(
    query: BooleanQuery, databases: Iterable[Database]
) -> bool:
    """Check monotonicity of ``q`` across the comparable pairs of a sample.

    For every pair ``D ⊆ D'`` in the sample, ``D |= q`` must imply
    ``D' |= q``.  (A sampled refutation is definitive; a pass is evidence,
    not proof.)
    """
    sample = list(databases)
    for smaller in sample:
        if not evaluate(query, smaller):
            continue
        for bigger in sample:
            if smaller.issubset(bigger) and not evaluate(query, bigger):
                return False
    return True
