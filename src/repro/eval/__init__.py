"""Query evaluation over complete databases, and certainty measures.

``D |= q`` for BCQs is homomorphism existence (Section 2); unions, negations
and custom queries are layered on top.  :mod:`repro.eval.certainty` provides
the classical ``Certainty(q)`` / possibility notions the paper refines, plus
the valuation/completion *support* ratios that motivate the counting
problems in the introduction.
"""

from repro.eval.homomorphism import (
    count_homomorphisms,
    find_homomorphism,
    satisfies_bcq,
)
from repro.eval.evaluate import evaluate
from repro.eval.certainty import (
    completion_support,
    is_certain,
    is_possible,
    valuation_support,
)
from repro.eval.answers import (
    ConjunctiveQuery,
    answer_reports,
    answers_by_support,
    best_answers,
)
from repro.eval.minimal_models import (
    has_bounded_minimal_models,
    is_monotone_on,
    minimal_models,
)

__all__ = [
    "count_homomorphisms",
    "find_homomorphism",
    "satisfies_bcq",
    "evaluate",
    "completion_support",
    "is_certain",
    "is_possible",
    "valuation_support",
    "ConjunctiveQuery",
    "answer_reports",
    "answers_by_support",
    "best_answers",
    "has_bounded_minimal_models",
    "is_monotone_on",
    "minimal_models",
]
