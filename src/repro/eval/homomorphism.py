"""Homomorphism-based evaluation of Boolean conjunctive queries.

A homomorphism from a BCQ ``q`` to a database ``D`` maps the variables of
``q`` to constants of ``D`` so that every atom lands on a fact of ``D``
(Section 2).  Backtracking search over atoms, processing the most
constrained atoms first.
"""

from __future__ import annotations

from repro.core.query import Atom, BCQ, Const, Var
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.terms import Term


def _atom_matches(
    atom: Atom, fact: Fact, assignment: dict[Var, Term]
) -> dict[Var, Term] | None:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``fact``.

    Returns the extended assignment, or ``None`` on mismatch.  Constants in
    the atom must equal the fact's values; repeated variables must agree.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def find_homomorphism(
    query: BCQ, database: Database
) -> dict[Var, Term] | None:
    """One homomorphism from ``query`` to ``database``, or ``None``.

    Atoms are matched in ascending order of candidate-fact count, which
    keeps the search shallow on the small fixed queries of the paper.
    """
    facts_by_relation: dict[str, list[Fact]] = {}
    for fact in database.facts:
        facts_by_relation.setdefault(fact.relation, []).append(fact)

    atoms = sorted(
        query.atoms,
        key=lambda atom: len(facts_by_relation.get(atom.relation, ())),
    )
    if any(atom.relation not in facts_by_relation for atom in atoms):
        return None

    def search(index: int, assignment: dict[Var, Term]) -> dict[Var, Term] | None:
        if index == len(atoms):
            return assignment
        atom = atoms[index]
        for fact in facts_by_relation[atom.relation]:
            extended = _atom_matches(atom, fact, assignment)
            if extended is not None:
                result = search(index + 1, extended)
                if result is not None:
                    return result
        return None

    return search(0, {})


def satisfies_bcq(database: Database, query: BCQ) -> bool:
    """``D |= q`` for a Boolean conjunctive query."""
    return find_homomorphism(query, database) is not None


def count_homomorphisms(query: BCQ, database: Database) -> int:
    """Number of homomorphisms from ``query`` to ``database``.

    Not one of the paper's counting problems (those count valuations and
    completions), but a convenient cross-check for the evaluator.
    """
    facts_by_relation: dict[str, list[Fact]] = {}
    for fact in database.facts:
        facts_by_relation.setdefault(fact.relation, []).append(fact)

    atoms = list(query.atoms)
    if any(atom.relation not in facts_by_relation for atom in atoms):
        return 0

    def count(index: int, assignment: dict[Var, Term]) -> int:
        if index == len(atoms):
            return 1
        total = 0
        atom = atoms[index]
        for fact in facts_by_relation[atom.relation]:
            extended = _atom_matches(atom, fact, assignment)
            if extended is not None:
                total += count(index + 1, extended)
        return total

    return count(0, {})
