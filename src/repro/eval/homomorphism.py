"""Homomorphism-based evaluation of Boolean conjunctive queries.

A homomorphism from a BCQ ``q`` to a database ``D`` maps the variables of
``q`` to constants of ``D`` so that every atom lands on a fact of ``D``
(Section 2).  Backtracking search over atoms, processing the most
constrained atoms first.

Candidate facts are pre-indexed by ``(relation, position, value)``: when an
atom position holds a constant or an already-bound variable, the search
only scans the posting list of that value instead of the whole relation.
On the batch workloads of :mod:`repro.engine` this turns the inner loop
from a cartesian scan into a handful of dictionary lookups.
"""

from __future__ import annotations

from repro.core.query import Atom, BCQ, Const, Var
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.terms import Term

_NO_FACTS: tuple[Fact, ...] = ()


class _FactIndex:
    """Postings of a database's facts by relation and by position value."""

    __slots__ = ("by_relation", "by_value")

    def __init__(self, facts) -> None:
        by_relation: dict[str, list[Fact]] = {}
        by_value: dict[tuple[str, int, Term], list[Fact]] = {}
        for fact in facts:
            by_relation.setdefault(fact.relation, []).append(fact)
            for position, value in enumerate(fact.terms):
                by_value.setdefault(
                    (fact.relation, position, value), []
                ).append(fact)
        self.by_relation = by_relation
        self.by_value = by_value

    def candidates(
        self, atom: Atom, assignment: dict[Var, Term]
    ) -> list[Fact] | tuple[Fact, ...]:
        """Smallest posting list consistent with the bound atom positions.

        Every returned fact still goes through :func:`_atom_matches`; the
        index only prunes, it never admits a spurious match.
        """
        best = self.by_relation.get(atom.relation, _NO_FACTS)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const):
                value = term.value
            else:
                bound = assignment.get(term)
                if bound is None:
                    continue
                value = bound
            posting = self.by_value.get(
                (atom.relation, position, value), _NO_FACTS
            )
            if len(posting) < len(best):
                best = posting
            if not best:
                break
        return best


def _atom_matches(
    atom: Atom, fact: Fact, assignment: dict[Var, Term]
) -> dict[Var, Term] | None:
    """Try to extend ``assignment`` so that ``atom`` maps onto ``fact``.

    Returns the extended assignment, or ``None`` on mismatch.  Constants in
    the atom must equal the fact's values; repeated variables must agree.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extended = dict(assignment)
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def find_homomorphism(
    query: BCQ, database: Database
) -> dict[Var, Term] | None:
    """One homomorphism from ``query`` to ``database``, or ``None``.

    Atoms are matched in ascending order of candidate-fact count, which
    keeps the search shallow on the small fixed queries of the paper.
    """
    index = _FactIndex(database.facts)
    atoms = sorted(
        query.atoms,
        key=lambda atom: len(index.by_relation.get(atom.relation, ())),
    )
    if any(atom.relation not in index.by_relation for atom in atoms):
        return None

    def search(index_position: int, assignment: dict[Var, Term]) -> dict[Var, Term] | None:
        if index_position == len(atoms):
            return assignment
        atom = atoms[index_position]
        for fact in index.candidates(atom, assignment):
            extended = _atom_matches(atom, fact, assignment)
            if extended is not None:
                result = search(index_position + 1, extended)
                if result is not None:
                    return result
        return None

    return search(0, {})


def satisfies_bcq(database: Database, query: BCQ) -> bool:
    """``D |= q`` for a Boolean conjunctive query."""
    return find_homomorphism(query, database) is not None


def count_homomorphisms(query: BCQ, database: Database) -> int:
    """Number of homomorphisms from ``query`` to ``database``.

    Not one of the paper's counting problems (those count valuations and
    completions), but a convenient cross-check for the evaluator.
    """
    index = _FactIndex(database.facts)
    atoms = list(query.atoms)
    if any(atom.relation not in index.by_relation for atom in atoms):
        return 0

    def count(index_position: int, assignment: dict[Var, Term]) -> int:
        if index_position == len(atoms):
            return 1
        total = 0
        atom = atoms[index_position]
        for fact in index.candidates(atom, assignment):
            extended = _atom_matches(atom, fact, assignment)
            if extended is not None:
                total += count(index_position + 1, extended)
        return total

    return count(0, {})
