"""Generic Boolean-query evaluation over complete databases."""

from __future__ import annotations

from repro.core.query import BCQ, BooleanQuery, CustomQuery, Negation, UCQ
from repro.db.database import Database
from repro.eval.homomorphism import satisfies_bcq


def evaluate(query: BooleanQuery, database: Database) -> bool:
    """``D |= q`` for any supported Boolean query.

    Dispatches on the query class: homomorphism search for BCQs, disjunction
    for UCQs, complement for negations, and the embedded decision procedure
    for :class:`~repro.core.query.CustomQuery` (Section 6 queries).
    """
    if isinstance(query, BCQ):
        return satisfies_bcq(database, query)
    if isinstance(query, UCQ):
        return any(
            satisfies_bcq(database, disjunct) for disjunct in query.disjuncts
        )
    if isinstance(query, Negation):
        return not evaluate(query.inner, database)
    if isinstance(query, CustomQuery):
        return query.decide(database)
    raise TypeError("cannot evaluate query of type %s" % type(query).__name__)
