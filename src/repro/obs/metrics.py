"""The metrics registry: named counters, gauges, exact-quantile histograms.

A :class:`Metrics` registry is a flat namespace of instruments created on
first use (``registry.counter("sharpsat.decisions")``), so instrumented
code never declares anything up front.  Design constraints, in order:

* **cheap** — instruments are ``__slots__`` objects; a counter bump is a
  lock-guarded int add, a histogram observation a list append.  The
  instrumentation points sit at phase boundaries (per search, per job,
  per circuit pass), so even the lock is paid thousands of times per
  second at most, never per literal;
* **exact** — histograms keep every observation, so :func:`quantile` is
  the true order statistic (nearest-rank), not a bucket approximation.
  The workloads observed (per-job latencies, per-phase timings) are
  bounded by job counts, so exactness costs memory proportional to work
  already done;
* **mergeable** — :meth:`Metrics.dump` emits a plain-data form carrying
  raw histogram values and :meth:`Metrics.merge` folds one in, so a
  parent process can aggregate worker measurements without losing
  quantile exactness.  :meth:`Metrics.snapshot` is the compact JSON-ready
  summary (counts, sums, p50/p90/p99) for reports and ``JobResult.meta``.

The process-wide default registry (:func:`default_registry`) is what the
:func:`repro.obs.spans.span` API records into; tests that need isolation
construct their own :class:`Metrics` and pass it explicitly.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping


def quantile(values: "list | tuple", q: float) -> Any:
    """Exact nearest-rank quantile of ``values`` (which must be sorted).

    ``q`` in ``[0, 1]``; ``q=0`` is the minimum, ``q=1`` the maximum, and
    generally the smallest element whose rank covers a ``q`` fraction of
    the data — the classic nearest-rank definition, exact by construction.
    """
    if not values:
        raise ValueError("quantile of no observations")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile fraction must be in [0, 1]")
    rank = max(1, math.ceil(q * len(values)))
    return values[rank - 1]


class Counter:
    """A monotonically increasing named total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A named last-written value (pool size, warm time, hit rate)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Any = None

    def set(self, value: Any) -> None:
        self._value = value

    @property
    def value(self) -> Any:
        return self._value


class Histogram:
    """Every observation, kept — quantiles are exact order statistics."""

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list = []
        self._lock = threading.Lock()

    def observe(self, value: Any) -> None:
        with self._lock:
            self._values.append(value)

    def observe_many(self, values: Iterable) -> None:
        with self._lock:
            self._values.extend(values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self):
        return sum(self._values)

    def values(self) -> list:
        """A copy of the raw observations, in arrival order."""
        return list(self._values)

    def quantile(self, q: float):
        """Exact nearest-rank quantile over everything observed so far."""
        return quantile(sorted(self._values), q)

    def summary(self) -> dict[str, Any]:
        """Compact JSON-ready digest: count, sum, min/max, p50/p90/p99."""
        ordered = sorted(self._values)
        if not ordered:
            return {"count": 0, "sum": 0}
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": quantile(ordered, 0.50),
            "p90": quantile(ordered, 0.90),
            "p99": quantile(ordered, 0.99),
        }


class Metrics:
    """A registry of instruments, created on first use by name.

    A name identifies exactly one instrument; asking for an existing name
    as a different kind raises (one vocabulary, no shadowing).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def _claim(self, name: str, table: dict) -> None:
        for kind, other in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other is not table and name in other:
                raise ValueError(
                    "metric name %r already registered as a %s" % (name, kind)
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    self._claim(name, self._counters)
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    self._claim(name, self._gauges)
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    self._claim(name, self._histograms)
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    def inc_many(self, prefix: str, stats: Mapping[str, Any]) -> None:
        """Bulk counter increments from a solver's ``stats()`` dict.

        Non-numeric and ``None`` values are skipped, so the uniform
        stats vocabulary (which carries labels like ``core``) can be
        mirrored wholesale.
        """
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.counter("%s.%s" % (prefix, key)).inc(value)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Compact JSON-ready summary of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def dump(self) -> dict[str, Any]:
        """Lossless plain-data form (histograms carry raw values) for
        cross-process shipping; fold into another registry with
        :meth:`merge`."""
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: histogram.values()
                for name, histogram in self._histograms.items()
            },
        }

    def merge(self, dumped: Mapping[str, Any]) -> None:
        """Fold a :meth:`dump` (e.g. from a worker process) into this
        registry: counters add, gauges take the incoming value, histogram
        observations concatenate — quantiles stay exact."""
        for name, value in dumped.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dumped.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in dumped.get("histograms", {}).items():
            self.histogram(name).observe_many(values)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry the span API and the flush helpers feed.
_DEFAULT = Metrics()


def default_registry() -> Metrics:
    """The process-wide default registry (always the same object)."""
    return _DEFAULT
