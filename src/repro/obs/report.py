"""Text reports over spans and registries: the human side of `repro.obs`.

Everything here is pure formatting/aggregation over data the other two
modules produce — span trees from :func:`repro.obs.spans.capture`,
snapshots from :meth:`repro.obs.metrics.Metrics.snapshot`, and JSONL
event streams written by :class:`repro.obs.spans.JsonlSink`.  The CLI
(``repro stats``, ``count --trace``, ``batch``) and the benchmark
harness render through these helpers so the vocabulary stays in one
place.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.obs.metrics import Metrics, default_registry, quantile
from repro.obs.spans import Span

#: Histogram names behind the per-job latency summary, in display order.
JOB_LATENCY_STAGES = ("queue", "execute", "total")


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 0.001:
        return "%.1fms" % (seconds * 1e3)
    return "%.0fus" % (seconds * 1e6)


def render_span_tree(
    roots: "Span | Iterable[Span]",
    min_fraction: float = 0.0,
) -> str:
    """Render span trees as an indented phase tree with timings.

    Each line shows the span name, its wall seconds, and its share of the
    root's wall time; ``fields`` the instrumentation attached (decision
    counts, node counts, ...) trail the line.  Spans below
    ``min_fraction`` of the root are elided (their time still shows in
    the parent).
    """
    if isinstance(roots, Span):
        roots = [roots]
    lines: list[str] = []
    for root in roots:
        total = root.seconds or 1e-12
        for node, depth in root.walk():
            if node.seconds < min_fraction * total and depth > 0:
                continue
            share = 100.0 * node.seconds / total
            extras = " ".join(
                "%s=%s" % (key, value) for key, value in node.fields.items()
            )
            lines.append(
                "%s%-*s %9s %5.1f%%%s"
                % (
                    "  " * depth,
                    max(1, 36 - 2 * depth),
                    node.name,
                    _fmt_seconds(node.seconds),
                    share,
                    "  [%s]" % extras if extras else "",
                )
            )
    return "\n".join(lines)


def summarize_latencies(registry: Metrics | None = None) -> dict[str, Any]:
    """Digest the engine's per-job latency histograms.

    Returns ``{"queue": summary, "execute": summary, "total": summary}``
    where each summary is :meth:`Histogram.summary` output (empty-count
    summaries when the engine has not run).
    """
    if registry is None:
        registry = default_registry()
    return {
        stage: registry.histogram("engine.job.%s_seconds" % stage).summary()
        for stage in JOB_LATENCY_STAGES
    }


def format_latency_summary(
    latencies: Mapping[str, Mapping[str, Any]],
    cache_stats: Mapping[str, Any] | None = None,
) -> str:
    """The ``repro batch`` closing table: per-job latency percentiles per
    stage plus cache hit rates, as aligned plain text."""
    lines = [
        "%-8s %6s %9s %9s %9s %9s"
        % ("stage", "jobs", "p50", "p90", "p99", "total")
    ]
    for stage in JOB_LATENCY_STAGES:
        summary = latencies.get(stage) or {}
        count = summary.get("count", 0)
        if not count:
            lines.append("%-8s %6d %9s %9s %9s %9s" % (stage, 0, "-", "-", "-", "-"))
            continue
        lines.append(
            "%-8s %6d %9s %9s %9s %9s"
            % (
                stage,
                count,
                _fmt_seconds(summary["p50"]),
                _fmt_seconds(summary["p90"]),
                _fmt_seconds(summary["p99"]),
                _fmt_seconds(summary["sum"]),
            )
        )
    if cache_stats:
        lines.append(
            "cache: memo %d hit / %d miss (rate %.2f), "
            "circuits %d stored / %d B, %d hit / %d miss, %d evicted"
            % (
                cache_stats.get("hits", 0),
                cache_stats.get("misses", 0),
                cache_stats.get("hit_rate", 0.0),
                cache_stats.get("circuits", 0),
                cache_stats.get("circuit_bytes", 0),
                cache_stats.get("circuit_hits", 0),
                cache_stats.get("circuit_misses", 0),
                cache_stats.get("circuit_evictions", 0),
            )
        )
    return "\n".join(lines)


def format_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`Metrics.snapshot` as a sectioned text report."""
    lines: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append("  %-*s %s" % (width, name, value))
    gauges = {
        name: value
        for name, value in (snapshot.get("gauges") or {}).items()
        if value is not None
    }
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            shown = _fmt_seconds(value) if name.endswith("_seconds") else value
            lines.append("  %-*s %s" % (width, name, shown))
    histograms = {
        name: summary
        for name, summary in (snapshot.get("histograms") or {}).items()
        if summary.get("count")
    }
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, summary in histograms.items():
            if name.endswith("_seconds") or "." in name and isinstance(
                summary.get("sum"), float
            ):
                fmt = _fmt_seconds
            else:
                fmt = lambda v: str(v)  # noqa: E731 - tiny local formatter
            lines.append(
                "  %-*s n=%-6d sum=%-9s p50=%-9s p99=%s"
                % (
                    width,
                    name,
                    summary["count"],
                    fmt(summary["sum"]),
                    fmt(summary["p50"]),
                    fmt(summary["p99"]),
                )
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def aggregate_metrics_jsonl(path: str) -> dict[str, Any]:
    """Aggregate a :class:`JsonlSink` stream back into summary form.

    Reads one JSON record per line and returns::

        {"records": N,
         "spans": {name: {count, sum, min, max, p50, p90, p99}},
         "events": {name: count}}

    Span quantiles are exact — computed over every record's seconds, the
    same nearest-rank statistic the live histograms use.
    """
    span_values: dict[str, list[float]] = {}
    events: dict[str, int] = {}
    records = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            records += 1
            kind = record.get("type")
            name = record.get("name", "?")
            if kind == "span":
                span_values.setdefault(name, []).append(
                    float(record.get("seconds", 0.0))
                )
            elif kind == "event":
                events[name] = events.get(name, 0) + 1
    spans: dict[str, Any] = {}
    for name, values in sorted(span_values.items()):
        ordered = sorted(values)
        spans[name] = {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": quantile(ordered, 0.50),
            "p90": quantile(ordered, 0.90),
            "p99": quantile(ordered, 0.99),
        }
    return {
        "records": records,
        "spans": spans,
        "events": dict(sorted(events.items())),
    }
