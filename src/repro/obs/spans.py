"""Phase spans: monotonic-clock timing that nests, records, and streams.

The one instrumentation verb the rest of the stack uses::

    with span("compile.search", variables=cnf.num_variables):
        ...

A finished span does three things, each only when someone is listening:

* **observes** its duration into the default registry's histogram of the
  same name (always, while the layer is enabled) — this is what makes
  ``repro stats`` and the harness phase breakdowns possible without any
  caller bookkeeping;
* **attaches** itself to the enclosing span, building a tree; a
  :func:`capture` context collects the finished root trees (and every
  counter bumped meanwhile), which is how ``repro count --trace`` prints
  a nested phase tree and how the engine builds per-job metrics;
* **streams** one event to every attached sink (``batch
  --metrics-jsonl``, the harness's CI artifact) — a JSON record per span,
  with its path in the tree, its wall seconds, and the caller's fields.

Span state is thread-local, so concurrent threads trace independently;
worker *processes* start fresh and ship their capture home in
``JobResult.meta['metrics']`` (see :mod:`repro.engine.jobs`).

The whole layer can be switched off (:func:`set_enabled`): every entry
point then returns a shared no-op — one global check, no allocation, no
clock read — which is the fast path the overhead guard test measures.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from repro.obs.metrics import Metrics, default_registry

_perf_counter = time.perf_counter

#: Process-wide switch; flipped by :func:`set_enabled`.
_ENABLED = True

_TLS = threading.local()

_SINKS: list["Callable[[dict], None] | JsonlSink"] = []
_SINK_LOCK = threading.Lock()


def enabled() -> bool:
    """Whether the observability layer is live in this process."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the layer on or off; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def _captures() -> list:
    captures = getattr(_TLS, "captures", None)
    if captures is None:
        captures = _TLS.captures = []
    return captures


def reset_thread_state() -> None:
    """Forget this thread's active spans and captures.

    A forked worker starts with a copy of the forking thread's state — if
    the parent forked mid-span (the batch engine always does), new spans
    in the worker would attach to that phantom parent instead of the
    worker's own capture.  Worker entry points call this first.
    """
    _TLS.stack = []
    _TLS.captures = []


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


class Span:
    """One finished (or running) phase: name, wall seconds, children."""

    __slots__ = ("name", "seconds", "fields", "children")

    def __init__(self, name: str, fields: dict[str, Any]) -> None:
        self.name = name
        self.seconds = 0.0
        self.fields = fields
        self.children: list["Span"] = []

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by child spans (non-negative)."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self, depth: int = 0) -> "Iterator[tuple[Span, int]]":
        """Every span of the subtree with its depth, parents first."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready nested form (the ``--json`` trace payload)."""
        record: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
        }
        if self.fields:
            record.update(self.fields)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __repr__(self) -> str:
        return "Span(%r, %.6fs, %d children)" % (
            self.name, self.seconds, len(self.children),
        )


class _NullSpan:
    """The disabled fast path: a shared, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """The live span context manager (class-based: cheaper than a
    generator, and exception-safe by construction — ``__exit__`` always
    pops what ``__enter__`` pushed)."""

    __slots__ = ("_span", "_registry", "_started")

    def __init__(
        self, name: str, registry: Metrics | None, fields: dict[str, Any]
    ) -> None:
        self._span = Span(name, fields)
        self._registry = registry

    def __enter__(self) -> Span:
        _stack().append(self._span)
        self._started = _perf_counter()
        return self._span

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        seconds = _perf_counter() - self._started
        span_record = self._span
        span_record.seconds = seconds
        if exc_type is not None:
            span_record.fields["error"] = exc_type.__name__
        stack = _stack()
        stack.pop()
        if stack:
            stack[-1].children.append(span_record)
        else:
            for active in _captures():
                active.roots.append(span_record)
        registry = self._registry
        if registry is None:
            registry = default_registry()
        registry.histogram(span_record.name).observe(seconds)
        if _SINKS:
            record = {
                "type": "span",
                "name": span_record.name,
                "path": "/".join(
                    [frame.name for frame in stack] + [span_record.name]
                ),
                "depth": len(stack),
                "seconds": round(seconds, 9),
            }
            if span_record.fields:
                record.update(span_record.fields)
            _emit(record)
        return False


def span(name: str, registry: Metrics | None = None, **fields: Any):
    """Time a phase: a context manager yielding the live :class:`Span`.

    ``fields`` annotate the span (and its sink event); ``registry``
    overrides the default registry the duration is observed into.  When
    the layer is disabled this returns a shared no-op.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _SpanContext(name, registry, fields)


# ---------------------------------------------------------------------------
# counters and events through the same gate
# ---------------------------------------------------------------------------


def incr(name: str, amount: int | float = 1) -> None:
    """Bump a counter on the default registry and every active capture."""
    if not _ENABLED:
        return
    default_registry().counter(name).inc(amount)
    for active in _captures():
        active.counters[name] = active.counters.get(name, 0) + amount


def observe(name: str, value: Any) -> None:
    """Observe a value into the default registry's histogram ``name``."""
    if not _ENABLED:
        return
    default_registry().histogram(name).observe(value)


def event(name: str, **fields: Any) -> None:
    """A structured, non-timing occurrence (e.g. one planner decision):
    counted on the default registry, streamed to sinks with its fields."""
    if not _ENABLED:
        return
    default_registry().counter(name).inc()
    for active in _captures():
        active.counters[name] = active.counters.get(name, 0) + 1
    if _SINKS:
        record = {"type": "event", "name": name}
        record.update(fields)
        _emit(record)


# ---------------------------------------------------------------------------
# captures
# ---------------------------------------------------------------------------


class capture:
    """Collect every root span tree and counter bump of a scope.

    The engine wraps each job solve in one of these to build the job's
    ``meta['metrics']``; the CLI wraps a whole solve to print ``--trace``
    trees; the harness wraps each tracked path for its phase breakdown.
    Captures nest (each sees everything inside its own scope) and are
    thread-local.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.counters: dict[str, int | float] = {}

    def __enter__(self) -> "capture":
        _captures().append(self)
        return self

    def __exit__(self, *_exc_info: object) -> bool:
        active = _captures()
        if self in active:
            active.remove(self)
        return False

    def phase_totals(self) -> dict[str, float]:
        """Total *inclusive* seconds per span name across all trees."""
        totals: dict[str, float] = {}
        for root in self.roots:
            for node, _depth in root.walk():
                totals[node.name] = totals.get(node.name, 0.0) + node.seconds
        return totals

    def self_totals(self) -> dict[str, float]:
        """Total *exclusive* seconds per span name (children subtracted) —
        sums across names reconcile with the roots' wall time."""
        totals: dict[str, float] = {}
        for root in self.roots:
            for node, _depth in root.walk():
                totals[node.name] = (
                    totals.get(node.name, 0.0) + node.self_seconds
                )
        return totals

    @property
    def seconds(self) -> float:
        """Total wall time of the captured root spans."""
        return sum(root.seconds for root in self.roots)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


def _emit(record: dict) -> None:
    with _SINK_LOCK:
        sinks = list(_SINKS)
    for sink in sinks:
        sink(record) if callable(sink) else sink.emit(record)


def emit_record(record: Mapping[str, Any]) -> None:
    """Deliver one raw record to the attached sinks.

    For spans that finished somewhere the sinks could not see — a worker
    process ships its capture home and the parent re-emits it here, so a
    ``--metrics-jsonl`` stream covers pool jobs too."""
    if not _ENABLED or not _SINKS:
        return
    _emit(dict(record))


def add_sink(sink: "Callable[[dict], None] | JsonlSink") -> None:
    """Attach a sink; every finished span / event is delivered to it."""
    with _SINK_LOCK:
        _SINKS.append(sink)


def remove_sink(sink: "Callable[[dict], None] | JsonlSink") -> None:
    """Detach a sink (idempotent)."""
    with _SINK_LOCK:
        if sink in _SINKS:
            _SINKS.remove(sink)


class JsonlSink:
    """A sink writing one JSON line per record (``--metrics-jsonl``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.records = 0

    def emit(self, record: Mapping[str, Any]) -> None:
        line = json.dumps(record, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self.records += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        add_sink(self)
        return self

    def __exit__(self, *_exc_info: object) -> None:
        remove_sink(self)
        self.close()
