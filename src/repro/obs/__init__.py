"""Observability: structured metrics, phase tracing, solver introspection.

A zero-dependency instrumentation layer threaded through every hot layer
of the stack — the trail core, the compile pipeline, the planner, the
batch engine, the circuit passes — and surfaced by the CLI (``repro
stats``, ``count --trace``, ``batch --metrics-jsonl``) and the benchmark
harness.  Three cooperating pieces:

* a :class:`~repro.obs.metrics.Metrics` **registry** — named counters,
  gauges and histograms (exact quantiles), with a process-wide default
  (:func:`default_registry`) and snapshot/merge support for aggregating
  worker-process measurements into the parent;
* a :func:`~repro.obs.spans.span` / :func:`~repro.obs.spans.capture`
  **tracing API** — monotonic-clock phase spans that nest into trees,
  feed their durations into the registry's histograms, and stream one
  event per span to attached sinks (:class:`~repro.obs.spans.JsonlSink`);
* **report** helpers (:mod:`repro.obs.report`) rendering span trees,
  registry snapshots and batch latency summaries as text.

The layer is cheap enough to leave always-on: instrumentation points sit
at *phase* boundaries (one span per search, per circuit pass, per job),
never inside inner loops, and when disabled (:func:`set_enabled`) every
entry point degrades to a shared no-op — a guard test asserts the
end-to-end overhead on the counter's hot path stays within tolerance.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    default_registry,
    quantile,
)
from repro.obs.report import (
    aggregate_metrics_jsonl,
    format_latency_summary,
    format_snapshot,
    render_span_tree,
    summarize_latencies,
)
from repro.obs.spans import (
    JsonlSink,
    Span,
    add_sink,
    capture,
    emit_record,
    enabled,
    event,
    incr,
    observe,
    remove_sink,
    reset_thread_state,
    set_enabled,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "default_registry",
    "quantile",
    "JsonlSink",
    "Span",
    "add_sink",
    "capture",
    "emit_record",
    "enabled",
    "event",
    "incr",
    "observe",
    "remove_sink",
    "reset_thread_state",
    "set_enabled",
    "span",
    "aggregate_metrics_jsonl",
    "format_latency_summary",
    "format_snapshot",
    "render_span_tree",
    "summarize_latencies",
]
