"""Command-line interface: classify queries and count over database files.

Examples::

    repro-count classify "R(x,x)"
    repro-count count --mode val --query "R(x), S(x)" --db instance.idb
    repro-count count --mode comp --db instance.idb          # all completions
    repro-count count --mode val --query "R(x,x)" --db instance.idb \
        --method circuit --json                              # machine-readable
    repro-count explain --query "R(x,x)" --db instance.idb --marginals
    repro-count approx --query "R(x,y)" --db instance.idb --epsilon 0.05
    repro-count sweep --query "R(x,y)" --db instance.idb \
        --weights '[{"n1": {"a": 2, "b": 1}}, null]'     # one count per row
    repro-count batch --jobs jobs.jsonl --workers 4 --cache-mb 64 \
        --out results.jsonl
    repro-count show --db instance.idb

Database files use the :mod:`repro.io.databases` text format; batch job
files use the JSONL format of :mod:`repro.engine.jsonl`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import __version__
from repro.core.classify import classify
from repro.core.query import BCQ
from repro.db.valuation import count_total_valuations
from repro.exact.dispatch import (
    count_completions,
    count_valuations,
    resolve_completion_method,
    resolve_valuation_method,
    solve,
)
from repro.io.databases import parse_database
from repro.io.queries import parse_query


def _load_db(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_database(handle.read())


def _print_trace(captured) -> None:
    """Render a capture's phase tree to stderr (stdout stays parseable)."""
    from repro.obs import render_span_tree

    if captured.roots:
        print("phase trace:", file=sys.stderr)
        print(render_span_tree(captured.roots), file=sys.stderr)


def _cmd_classify(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    if not isinstance(query, BCQ):
        print("classification applies to (self-join-free) BCQs", file=sys.stderr)
        return 2
    print(classify(query).to_table())
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.obs import capture, span

    db = _load_db(args.db)
    query = parse_query(args.query) if args.query else None
    started = time.perf_counter()
    with capture() as captured:
        with span("cli.count", mode=args.mode):
            if args.mode == "val":
                if query is None:
                    resolved = "total"
                    count = count_total_valuations(db)
                else:
                    resolved = resolve_valuation_method(db, query, args.method)
                    count = count_valuations(
                        db, query, method=resolved, budget=args.budget
                    )
            else:
                resolved = resolve_completion_method(db, query, args.method)
                count = count_completions(
                    db, query, method=resolved, budget=args.budget
                )
    elapsed = time.perf_counter() - started
    if args.trace:
        _print_trace(captured)
    if args.json:
        print(
            json.dumps(
                {
                    "mode": args.mode,
                    "count": count,
                    "method": resolved,
                    "seconds": round(elapsed, 6),
                }
            )
        )
    else:
        print(count)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.compile.backend import (
        explain_completions,
        explain_valuations_circuit,
    )

    if args.weights and not args.marginals:
        print(
            "--weights only applies together with --marginals",
            file=sys.stderr,
        )
        return 2
    from repro.obs import capture, span

    db = _load_db(args.db)
    query = parse_query(args.query) if args.query else None
    started = time.perf_counter()
    marginals = None
    with capture() as captured:
        with span("cli.explain", mode=args.mode):
            if args.mode == "comp":
                if args.marginals:
                    print(
                        "--marginals applies to --mode val (per-null tables)",
                        file=sys.stderr,
                    )
                    return 2
                report = explain_completions(db, query)
            else:
                if query is None:
                    print("--mode val needs --query", file=sys.stderr)
                    return 2
                report, compiled = explain_valuations_circuit(db, query)
                if args.marginals:
                    weights = None
                    if args.weights:
                        from repro.engine.jsonl import parse_weights

                        weights = parse_weights(
                            json.loads(args.weights), db, "--weights"
                        )
                    try:
                        marginals = compiled.marginals(weights)
                    except ValueError as exc:
                        # Unsatisfiable query, or weights zeroing out every
                        # satisfying valuation — either way there is no
                        # distribution to report on.
                        print("%s" % exc, file=sys.stderr)
                        return 1
    elapsed = time.perf_counter() - started
    if args.trace:
        _print_trace(captured)

    if args.json:
        record = {
            "mode": report.mode,
            "count": report.count,
            "num_variables": report.num_variables,
            "num_clauses": report.num_clauses,
            "heuristic_width": report.heuristic_width,
            "cache_entries": report.cache_entries,
            "components_split": report.components_split,
            "circuit_nodes": report.circuit_nodes,
            "circuit_edges": report.circuit_edges,
            "seconds": round(elapsed, 6),
        }
        if marginals is not None:
            from repro.engine.jobs import marginals_record

            record["marginals"] = marginals_record(marginals)
        print(json.dumps(record))
        return 0

    print("mode:             %s" % report.mode)
    print("count:            %d" % report.count)
    print("cnf:              %d variables, %d clauses"
          % (report.num_variables, report.num_clauses))
    print("heuristic width:  %s" % report.heuristic_width)
    if report.circuit_nodes is not None:
        print("circuit:          %d nodes, %d edges"
              % (report.circuit_nodes, report.circuit_edges))
    else:
        print("search:           %d cached components, %d splits"
              % (report.cache_entries, report.components_split))
    if marginals is not None:
        print("marginals (P[null = value | query holds]):")
        for null in sorted(marginals, key=repr):
            for value, probability in sorted(
                marginals[null].items(), key=repr
            ):
                print(
                    "  %-12s %-10s %s  (= %.6g)"
                    % (repr(null), repr(value), probability, float(probability))
                )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.exact import planner

    db = _load_db(args.db)
    query = parse_query(args.query) if args.query else None
    if args.problem != "comp" and query is None:
        print("--problem %s needs --query" % args.problem, file=sys.stderr)
        return 2
    try:
        built = planner.plan(args.problem, db, query, args.method)
    except ValueError as exc:
        print("%s" % exc, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(built.to_dict()))
    else:
        print(built.explain())
    # A plan that could not choose (poly on a hard cell, no applicable
    # method) still prints its full analysis but signals failure.
    return 0 if built.chosen is not None else 1


class _DeltaAction(argparse.Action):
    """Collect ``--resolve/--restrict/--insert/--delete`` flags *in CLI
    order* into one ``deltas`` list — updates are a chain, and applying
    a resolve before or after a restrict of the same null differs."""

    def __call__(self, parser, namespace, values, option_string=None):
        items = getattr(namespace, self.dest, None) or []
        items.append((self.const, values))
        setattr(namespace, self.dest, items)


def _cmd_update(args: argparse.Namespace) -> int:
    """Apply a delta chain to a database and count on the updated instance.

    The planner sees the derived instance's provenance: a resolution-only
    chain is answered by *conditioning* the parent's circuit, an
    insert/delete chain by recompiling only the touched lineage
    components (``--plan`` shows the choice without solving).
    """
    from repro.io.databases import DatabaseSyntaxError, parse_delta
    from repro.obs import capture, span

    db = _load_db(args.db)
    query = parse_query(args.query) if args.query else None
    if args.mode == "val" and query is None:
        print("--mode val needs --query", file=sys.stderr)
        return 2
    if not args.deltas:
        print(
            "provide at least one --resolve/--restrict/--insert/--delete",
            file=sys.stderr,
        )
        return 2
    try:
        deltas = [parse_delta(kind, text) for kind, text in args.deltas]
    except DatabaseSyntaxError as exc:
        print("%s" % exc, file=sys.stderr)
        return 2
    child = db
    try:
        for delta in deltas:
            child = child.apply(delta)
    except (KeyError, ValueError) as exc:
        print("cannot apply delta: %s" % exc, file=sys.stderr)
        return 2

    if args.plan:
        from repro.exact import planner

        built = planner.plan(args.mode, child, query, args.method)
        if args.json:
            print(json.dumps(built.to_dict()))
        else:
            print(built.explain())
        return 0 if built.chosen is not None else 1

    with capture() as captured:
        with span("cli.update", mode=args.mode, deltas=len(deltas)):
            answer = solve(
                args.mode, child, query,
                method=args.method, budget=args.budget,
            )
    if args.trace:
        _print_trace(captured)
    if args.json:
        from repro.engine.fingerprint import fingerprint_derivation

        print(
            json.dumps(
                {
                    "mode": args.mode,
                    "count": answer.count,
                    "method": answer.method,
                    "deltas": len(deltas),
                    "derivation": fingerprint_derivation(
                        child, query, kind=args.mode
                    ),
                    "seconds": round(answer.seconds, 6),
                }
            )
        )
    else:
        print(answer.count)
        print(
            "update: %d deltas, method %s, %.3fs"
            % (len(deltas), answer.method, answer.seconds),
            file=sys.stderr,
        )
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    from repro.approx.fpras import KarpLubyEstimator

    db = _load_db(args.db)
    query = parse_query(args.query)
    started = time.perf_counter()
    estimator = KarpLubyEstimator(db, query, seed=args.seed)
    report = estimator.estimate(args.epsilon, args.delta)
    elapsed = time.perf_counter() - started
    if args.json:
        print(
            json.dumps(
                {
                    "estimate": report.estimate,
                    "method": "karp-luby",
                    "epsilon": args.epsilon,
                    "delta": args.delta,
                    "events": report.num_events,
                    "samples": report.samples,
                    "seconds": round(elapsed, 6),
                }
            )
        )
        return 0
    print(
        "%.6g  (events=%d, samples=%d, weight-bound=%d)"
        % (
            report.estimate,
            report.num_events,
            report.samples,
            report.total_event_weight,
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Answer many weightings of one instance from a single plan/compile.

    Rows arrive as a JSON array (inline ``--weights`` or one-array-per-file
    ``--weights-jsonl`` with one JSON row object per line); ``null`` rows
    mean default (uniform-unit) weights.  The whole batch is one ``solve``
    call on the ``sweep`` problem, so a circuit-backed plan compiles once
    and evaluates every row as a vectorized pass.
    """
    from repro.engine.jsonl import JobSyntaxError, parse_weights

    if (args.weights is None) == (args.weights_jsonl is None):
        print(
            "provide exactly one of --weights (inline JSON array) or "
            "--weights-jsonl (file of JSON row objects)",
            file=sys.stderr,
        )
        return 2
    db = _load_db(args.db)
    query = parse_query(args.query)
    if args.weights is not None:
        raw_rows = json.loads(args.weights)
        if not isinstance(raw_rows, list):
            print("--weights must be a JSON array of rows", file=sys.stderr)
            return 2
        contexts = ["--weights[%d]" % i for i in range(len(raw_rows))]
    else:
        raw_rows = []
        contexts = []
        with open(args.weights_jsonl, "r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                raw_rows.append(json.loads(line))
                contexts.append(
                    "%s line %d" % (args.weights_jsonl, line_number)
                )
    try:
        rows = [
            None if row is None else parse_weights(row, db, context)
            for row, context in zip(raw_rows, contexts)
        ]
    except JobSyntaxError as exc:
        print("%s" % exc, file=sys.stderr)
        return 2

    answer = solve(
        "sweep", db, query,
        method=args.method, weights=rows, budget=args.budget,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "problem": "sweep",
                    "rows": len(rows),
                    "counts": answer.count,
                    "method": answer.method,
                    "seconds": round(answer.seconds, 6),
                }
            )
        )
        return 0
    for count in answer.count:
        print(count)
    print(
        "sweep: %d weightings, method %s, %.3fs"
        % (len(rows), answer.method, answer.seconds),
        file=sys.stderr,
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine import BatchEngine
    from repro.engine.jsonl import read_jobs

    base_dir = os.path.dirname(os.path.abspath(args.jobs))
    with open(args.jobs, "r", encoding="utf-8") as handle:
        jobs = list(read_jobs(handle, base_dir=base_dir))
    if not jobs:
        print("no jobs in %s" % args.jobs, file=sys.stderr)
        return 2

    cache = None
    if args.cache_mb is not None:
        from repro.engine import CountCache

        cache = CountCache(
            max_circuit_bytes=int(args.cache_mb * 1024 * 1024)
        )
    from repro.obs import (
        JsonlSink,
        add_sink,
        format_latency_summary,
        remove_sink,
        summarize_latencies,
    )

    engine = BatchEngine(workers=args.workers, cache=cache)
    sink = None
    if args.metrics_jsonl:
        sink = JsonlSink(args.metrics_jsonl)
        add_sink(sink)
    started = time.perf_counter()
    try:
        results = engine.run(jobs)
    finally:
        if sink is not None:
            remove_sink(sink)
            sink.close()
    elapsed = time.perf_counter() - started

    lines = "".join(
        json.dumps(result.to_dict()) + "\n" for result in results
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(lines)
    else:
        sys.stdout.write(lines)

    errors = sum(1 for result in results if not result.ok)
    fallbacks = sum(1 for result in results if result.meta.get("fallback"))
    stats = engine.cache.stats()
    print(
        "batch: %d jobs, %d errors, %d serial fallbacks, "
        "cache hit rate %.1f%%, %d circuits "
        "(%d worker-compiled, %.2f MiB held), %.3fs wall"
        % (
            len(results),
            errors,
            fallbacks,
            100.0 * engine.cache.hit_rate,
            stats["circuits"],
            stats["worker_circuits"],
            stats["circuit_bytes"] / (1024.0 * 1024.0),
            elapsed,
        ),
        file=sys.stderr,
    )
    print(
        "cache: %d memo hits, %d circuit hits, %d parent-chain "
        "derivations, %d/%d component splices"
        % (
            stats["hits"],
            stats["circuit_hits"],
            stats["parent_chain_hits"],
            stats["component_hits"],
            stats["component_hits"] + stats["component_misses"],
        ),
        file=sys.stderr,
    )
    print(
        format_latency_summary(summarize_latencies(), stats), file=sys.stderr
    )
    if sink is not None:
        print(
            "metrics: %d span/event records -> %s"
            % (sink.records, args.metrics_jsonl),
            file=sys.stderr,
        )
    return 1 if errors else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render an observability snapshot.

    Two sources: ``--metrics-jsonl`` aggregates a span/event stream a
    previous run wrote (exact quantiles, recomputed from the raw records);
    ``--db`` runs one instrumented solve right here and reports what the
    registry saw.
    """
    from repro.obs import (
        aggregate_metrics_jsonl,
        capture,
        default_registry,
        format_snapshot,
        render_span_tree,
        span,
    )

    if args.metrics_jsonl:
        digest = aggregate_metrics_jsonl(args.metrics_jsonl)
        if args.json:
            print(json.dumps(digest))
            return 0
        print("records: %d" % digest["records"])
        print(
            format_snapshot(
                {
                    "counters": digest["events"],
                    "gauges": {},
                    "histograms": digest["spans"],
                }
            )
        )
        return 0

    if not args.db:
        print("stats needs --metrics-jsonl or --db", file=sys.stderr)
        return 2
    db = _load_db(args.db)
    query = parse_query(args.query) if args.query else None
    with capture() as captured:
        with span("cli.stats", mode=args.mode):
            if args.mode == "val":
                if query is None:
                    count = count_total_valuations(db)
                else:
                    resolved = resolve_valuation_method(db, query, args.method)
                    count = count_valuations(db, query, method=resolved)
            else:
                resolved = resolve_completion_method(db, query, args.method)
                count = count_completions(db, query, method=resolved)
    snapshot = default_registry().snapshot()
    if args.json:
        print(
            json.dumps(
                {
                    "count": count,
                    "snapshot": snapshot,
                    "trace": [root.to_dict() for root in captured.roots],
                },
                default=str,
            )
        )
        return 0
    print("count: %d" % count)
    print(render_span_tree(captured.roots))
    print(format_snapshot(snapshot))
    return 0


def _cmd_cite(args: argparse.Namespace) -> int:
    from repro.paperindex import all_results, find_results, format_result

    results = find_results(args.result) if args.result else all_results()
    if not results:
        print("no indexed result matches %r" % args.result, file=sys.stderr)
        return 1
    print("\n\n".join(format_result(result) for result in results))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    db = _load_db(args.db)
    print(repr(db))
    print("relations: %s" % ", ".join(sorted(db.relations)))
    print("nulls: %s" % ", ".join(repr(n) for n in db.nulls))
    print("total valuations: %d" % count_total_valuations(db))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-count",
        description="Counting problems over incomplete databases "
        "(Arenas, Barcelo, Monet; PODS 2020)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version="repro-count %s" % __version__,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_classify = sub.add_parser(
        "classify", help="dichotomy verdicts (Table 1) for an sjfBCQ"
    )
    p_classify.add_argument("query", help="e.g. \"R(x,y), S(y)\"")
    p_classify.set_defaults(func=_cmd_classify)

    p_count = sub.add_parser("count", help="exact #Val / #Comp")
    p_count.add_argument("--mode", choices=("val", "comp"), required=True)
    p_count.add_argument("--db", required=True, help="database file")
    p_count.add_argument("--query", help="query text (optional for comp)")
    p_count.add_argument(
        "--method",
        default="auto",
        help="auto | poly | lineage | circuit | brute | algorithm name",
    )
    p_count.add_argument(
        "--budget",
        type=int,
        default=2_000_000,
        help="max valuations for brute force",
    )
    p_count.add_argument(
        "--json",
        action="store_true",
        help="emit {mode, count, method, seconds} as JSON",
    )
    p_count.add_argument(
        "--trace",
        action="store_true",
        help="print the nested phase tree with timings to stderr",
    )
    p_count.set_defaults(func=_cmd_count)

    p_explain = sub.add_parser(
        "explain",
        help="compile one instance and report counter/circuit statistics",
    )
    p_explain.add_argument("--db", required=True, help="database file")
    p_explain.add_argument("--query", help="query text (optional for comp)")
    p_explain.add_argument("--mode", choices=("val", "comp"), default="val")
    p_explain.add_argument(
        "--marginals",
        action="store_true",
        help="report P[null = value | query holds] for every pair "
        "(mode val; one circuit, two passes)",
    )
    p_explain.add_argument(
        "--weights",
        default=None,
        help="JSON {null: {value: weight}} biasing the valuation "
        "distribution of --marginals",
    )
    p_explain.add_argument(
        "--json",
        action="store_true",
        help="emit the report (and marginals) as JSON",
    )
    p_explain.add_argument(
        "--trace",
        action="store_true",
        help="print the nested phase tree with timings to stderr",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_plan = sub.add_parser(
        "plan",
        help="explain the planner's method choice (chosen algorithm, "
        "rejected alternatives, reasons) without solving",
    )
    p_plan.add_argument(
        "--problem",
        choices=("val", "comp", "val-weighted", "marginals", "sweep"),
        default="val",
        help="problem kind the plan is for (default val)",
    )
    p_plan.add_argument("--db", required=True, help="database file")
    p_plan.add_argument("--query", help="query text (optional for comp)")
    p_plan.add_argument(
        "--method",
        default="auto",
        help="auto | poly | a concrete method name (forced)",
    )
    p_plan.add_argument(
        "--json",
        action="store_true",
        help="emit the plan record as JSON",
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_update = sub.add_parser(
        "update",
        help="apply a delta chain (resolve/restrict/insert/delete) and "
        "count on the updated instance; resolution-only chains are "
        "answered by conditioning the parent circuit",
    )
    p_update.add_argument("--mode", choices=("val", "comp"), default="val")
    p_update.add_argument("--db", required=True, help="database file")
    p_update.add_argument("--query", help="query text (optional for comp)")
    p_update.add_argument(
        "--resolve", dest="deltas", action=_DeltaAction, const="resolve",
        default=None, metavar="NULL=VALUE",
        help="pin a null to a constant of its domain (repeatable)",
    )
    p_update.add_argument(
        "--restrict", dest="deltas", action=_DeltaAction, const="restrict",
        metavar="NULL=V1,V2,...",
        help="shrink a null's domain to the listed values (repeatable)",
    )
    p_update.add_argument(
        "--insert", dest="deltas", action=_DeltaAction, const="insert",
        metavar="FACTS",
        help="add ';'-separated facts, e.g. \"R(a, ?n3) where n3: a b\" "
        "(repeatable)",
    )
    p_update.add_argument(
        "--delete", dest="deltas", action=_DeltaAction, const="delete",
        metavar="FACTS",
        help="remove ';'-separated existing facts (repeatable)",
    )
    p_update.add_argument(
        "--method",
        default="auto",
        help="auto | delta | circuit | ... (auto prefers the delta method "
        "on conditionable chains)",
    )
    p_update.add_argument(
        "--budget",
        type=int,
        default=2_000_000,
        help="max valuations for brute force",
    )
    p_update.add_argument(
        "--plan",
        action="store_true",
        help="print the planner's choice for the updated instance and exit",
    )
    p_update.add_argument(
        "--json",
        action="store_true",
        help="emit {mode, count, method, deltas, derivation, seconds} as JSON",
    )
    p_update.add_argument(
        "--trace",
        action="store_true",
        help="print the nested phase tree with timings to stderr",
    )
    p_update.set_defaults(func=_cmd_update)

    p_approx = sub.add_parser("approx", help="FPRAS estimate of #Val")
    p_approx.add_argument("--db", required=True)
    p_approx.add_argument("--query", required=True)
    p_approx.add_argument("--epsilon", type=float, default=0.1)
    p_approx.add_argument("--delta", type=float, default=0.25)
    p_approx.add_argument("--seed", type=int, default=None)
    p_approx.add_argument(
        "--json",
        action="store_true",
        help="emit {estimate, method, epsilon, delta, events, samples, "
        "seconds} as JSON",
    )
    p_approx.set_defaults(func=_cmd_approx)

    p_sweep = sub.add_parser(
        "sweep",
        help="answer many weightings of one #Val instance from a single "
        "plan (circuit plans compile once, evaluate all rows vectorized)",
    )
    p_sweep.add_argument("--db", required=True, help="database file")
    p_sweep.add_argument("--query", required=True, help="query text")
    p_sweep.add_argument(
        "--weights", default=None,
        help="inline JSON array of rows, each {null: {value: weight}} or "
        "null for default weights",
    )
    p_sweep.add_argument(
        "--weights-jsonl", default=None,
        help="file with one JSON row object (or null) per line",
    )
    p_sweep.add_argument(
        "--method", default="auto",
        help="auto | a concrete sweep method (single-occurrence, circuit, "
        "brute)",
    )
    p_sweep.add_argument(
        "--budget", type=int, default=2_000_000,
        help="max valuations for brute force",
    )
    p_sweep.add_argument(
        "--json", action="store_true",
        help="emit {problem, rows, counts, method, seconds} as JSON",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_batch = sub.add_parser(
        "batch", help="run a JSONL job stream through the batch engine"
    )
    p_batch.add_argument(
        "--jobs", required=True,
        help="JSONL job file (see repro.engine.jsonl for the format)",
    )
    p_batch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: one per CPU; 0/1 = in-process)",
    )
    p_batch.add_argument(
        "--out", default=None,
        help="write result JSONL here instead of stdout",
    )
    p_batch.add_argument(
        "--cache-mb", type=float, default=None,
        help="bound on memory held by cached circuits, in MiB "
        "(default: unbounded; eviction drops a circuit together with "
        "the answers derived from it)",
    )
    p_batch.add_argument(
        "--metrics-jsonl", default=None,
        help="stream one JSON record per phase span / planner event here "
        "(aggregate later with 'stats --metrics-jsonl')",
    )
    p_batch.set_defaults(func=_cmd_batch)

    p_stats = sub.add_parser(
        "stats",
        help="observability snapshot: aggregate a --metrics-jsonl stream, "
        "or run one instrumented solve and report what the registry saw",
    )
    p_stats.add_argument(
        "--metrics-jsonl", default=None,
        help="span/event JSONL written by 'batch --metrics-jsonl'",
    )
    p_stats.add_argument("--db", default=None, help="database file")
    p_stats.add_argument("--query", help="query text (optional for comp)")
    p_stats.add_argument("--mode", choices=("val", "comp"), default="val")
    p_stats.add_argument(
        "--method", default="auto",
        help="auto | poly | lineage | circuit | brute | algorithm name",
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="emit the snapshot (and trace) as JSON",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_cite = sub.add_parser(
        "cite", help="map a paper result to the code implementing it"
    )
    p_cite.add_argument(
        "result", nargs="?", default="",
        help="e.g. 'Theorem 3.9' or 'FPRAS' (empty: list everything)",
    )
    p_cite.set_defaults(func=_cmd_cite)

    p_show = sub.add_parser("show", help="summarize a database file")
    p_show.add_argument("--db", required=True)
    p_show.set_defaults(func=_cmd_show)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
