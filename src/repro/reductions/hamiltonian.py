"""Theorem 6.4: ``#Valu(q)`` SpanP-complete for a fixed query with NP model
checking — via ``#HamSubgraphs``.

For a graph ``G`` and ``k``, the uniform Codd table ``D_{G,k}`` holds

* ``R(u, v)`` and ``R(v, u)`` for every edge (ground facts),
* ``T(a_i, ⊥_i)`` for every node ``a_i`` (one null each, domain ``{0,1}``),
* ``K(j)`` for ``1 <= j <= k``.

The fixed Boolean query ``q_ESO`` of the proof asserts: letting
``S = {v : T(v, 1)}``, the cardinality of ``S`` equals the number of
``K``-elements and the subgraph of ``R`` induced by ``S`` is Hamiltonian.
The paper expresses it in existential second-order logic (model checking in
NP by Fagin's theorem); we implement the same fixed query as a
:class:`~repro.core.query.CustomQuery` whose decision procedure is the
exact Held-Karp Hamiltonicity test.  Valuations are in bijection with node
subsets, so the reduction is parsimonious:

``#HamSubgraphs(G, k) = #Valu(q_ESO)(D_{G,k})``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.query import CustomQuery
from repro.db.database import Database
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_valuations_brute
from repro.graphs.graph import Graph
from repro.graphs.hamilton import is_hamiltonian


def _decide_hamiltonian_query(database: Database) -> bool:
    """Model checking for ``q_ESO`` on a complete database."""
    chosen = set()
    universe = set()
    for fact in database.relation("T"):
        node, flag = fact.terms
        universe.add(node)
        if flag == 1:
            chosen.add(node)
    k = len(database.relation("K"))
    if len(chosen) != k:
        return False
    induced = Graph(nodes=chosen)
    for fact in database.relation("R"):
        u, v = fact.terms
        if u in chosen and v in chosen and u != v:
            induced.add_edge(u, v)
    return is_hamiltonian(induced)


def make_hamiltonian_query() -> CustomQuery:
    """The fixed query ``q_ESO`` (model checking in NP)."""
    return CustomQuery(
        name="q_ESO[HamSubgraphs]",
        relations=("R", "T", "K"),
        decide=_decide_hamiltonian_query,
        monotone=False,
        minimal_model_bound=None,
    )


def build_hamiltonian_db(graph: Graph, k: int) -> IncompleteDatabase:
    """The uniform Codd table ``D_{G,k}`` of Theorem 6.4."""
    if k < 1:
        raise ValueError("k must be at least 1")
    facts = []
    for u, v in graph.edges:
        facts.append(Fact("R", [("v", u), ("v", v)]))
        facts.append(Fact("R", [("v", v), ("v", u)]))
    for node in graph.nodes:
        facts.append(Fact("T", [("v", node), Null(("node", node))]))
    for j in range(1, k + 1):
        facts.append(Fact("K", [("k", j)]))
    return IncompleteDatabase.uniform(facts, (0, 1))


def count_ham_subgraphs_via_valuations(
    graph: Graph,
    k: int,
    oracle: Callable[[IncompleteDatabase, CustomQuery], int] = (
        count_valuations_brute
    ),
) -> int:
    """``#HamSubgraphs(G, k) = #Valu(q_ESO)(D_{G,k})`` — parsimonious."""
    db = build_hamiltonian_db(graph, k)
    return oracle(db, make_hamiltonian_query())
