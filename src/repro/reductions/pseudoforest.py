"""Prop. 4.5(b): ``#CompuCd(R(x,x))`` / ``#CompuCd(R(x,y))`` are #P-hard
via counting induced pseudoforests (``#PF``).

For a bipartite graph ``G = (U ⊔ V, E)`` (edges oriented ``U -> V``), the
uniform Codd table contains

* the *complementary facts* ``R(t, t')`` for every ordered pair in
  ``(U ∪ V)² \\ E``,
* ``R(u, ⊥_u)`` for ``u ∈ U`` and ``R(⊥_v, v)`` for ``v ∈ V``,
* ``R(f, f)`` for a fresh constant ``f`` (so both queries hold in every
  completion),

with uniform domain ``U ∪ V``.  A completion is determined by which edge
facts ``R(u, v)``, ``(u,v) ∈ E``, it contains, and ``D_S`` is a completion
iff ``G[S]`` admits an orientation of out-degree <= 1 — i.e. iff ``G[S]``
is a pseudoforest (Lemma B.4).  Hence ``#CompuCd(D_G) = #PF(G)``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute
from repro.graphs.graph import Graph, Node

#: Either Prop. 4.5 query works; the binary pattern is the default.
QUERY = BCQ([Atom("R", ["x", "y"])])
QUERY_LOOP = BCQ([Atom("R", ["x", "x"])])

Oracle = Callable[[IncompleteDatabase, BCQ], int]

FRESH = ("fresh", "f")


def build_pseudoforest_db(
    graph: Graph,
    left: set[Node] | None = None,
) -> IncompleteDatabase:
    """The uniform Codd table of Prop. 4.5(b).

    ``left`` fixes the bipartition side used to orient the edges (defaults
    to the first side found by 2-coloring).
    """
    partition = graph.bipartition()
    if partition is None:
        raise ValueError("Prop. 4.5(b) reduces from bipartite graphs")
    if left is None:
        left = partition[0]
    nodes = graph.nodes
    node_constant = {node: ("v", node) for node in nodes}
    edge_pairs = set()
    for u, v in graph.edges:
        source, target = (u, v) if u in left else (v, u)
        edge_pairs.add((source, target))

    facts = []
    for t in nodes:
        for t_prime in nodes:
            if (t, t_prime) not in edge_pairs:
                facts.append(
                    Fact("R", [node_constant[t], node_constant[t_prime]])
                )
    for node in nodes:
        null = Null(("node", node))
        if node in left:
            facts.append(Fact("R", [node_constant[node], null]))
        else:
            facts.append(Fact("R", [null, node_constant[node]]))
    facts.append(Fact("R", [FRESH, FRESH]))
    domain = [node_constant[node] for node in nodes]
    return IncompleteDatabase.uniform(facts, domain)


def count_pseudoforests_via_completions(
    graph: Graph, oracle: Oracle = count_completions_brute
) -> int:
    """``#PF(G) = #CompuCd(R(x,y))(D_G)`` — parsimonious (Prop. 4.5(b))."""
    db = build_pseudoforest_db(graph)
    return oracle(db, QUERY)
