"""Prop. 4.2: ``#CompCd(R(x))`` is #P-hard via counting vertex covers.

A *parsimonious* reduction: for ``G = (V, E)`` build the Codd table

* ``R(⊥_e)`` with ``dom(⊥_e) = {u, v}`` for every edge ``e = {u, v}``
  (every completion must pick an endpoint of each edge — a cover);
* ``R(⊥_u)`` with ``dom(⊥_u) = {u, a}`` for every node (each node is
  independently in or out, absorbed by the fresh constant ``a``);
* the fact ``R(a)``.

Completions are in bijection with vertex covers: ``#VC(G) =
#CompCd(R(x))(D_G)``.  Because ``S`` is a vertex cover iff ``V \\ S`` is an
independent set, the same database also counts independent sets — the
observation Section 5.2 uses to rule out an FPRAS (Theorem 5.5).
"""

from __future__ import annotations

from typing import Callable

from repro.core.patterns import PATTERN_UNARY
from repro.core.query import BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute
from repro.graphs.graph import Graph

#: The query of Prop. 4.2 (every completion trivially satisfies it).
QUERY: BCQ = PATTERN_UNARY

Oracle = Callable[[IncompleteDatabase, BCQ], int]

#: The fresh absorbing constant of the construction.
FRESH = ("fresh", "a")


def build_vertex_cover_db(graph: Graph) -> IncompleteDatabase:
    """The Codd table of Prop. 4.2."""
    facts = [Fact("R", [FRESH])]
    domains: dict[Null, list] = {}
    for u, v in graph.edges:
        null = Null(("edge", u, v))
        domains[null] = [("node", u), ("node", v)]
        facts.append(Fact("R", [null]))
    for node in graph.nodes:
        null = Null(("node", node))
        domains[null] = [("node", node), FRESH]
        facts.append(Fact("R", [null]))
    return IncompleteDatabase(facts, dom=domains)


def count_vertex_covers_via_completions(
    graph: Graph, oracle: Oracle = count_completions_brute
) -> int:
    """``#VC(G) = #CompCd(R(x))(D_G)`` — the reduction is parsimonious."""
    db = build_vertex_cover_db(graph)
    return oracle(db, QUERY)


def count_independent_sets_via_completions_nonuniform(
    graph: Graph, oracle: Oracle = count_completions_brute
) -> int:
    """``#IS(G) = #VC(G)`` under complementation; used by Theorem 5.5."""
    return count_vertex_covers_via_completions(graph, oracle)
