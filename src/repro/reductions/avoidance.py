"""Prop. 3.5: ``#ValCd(R(x) ∧ S(x))`` is #P-hard via ``#Avoidance``.

For a bipartite graph ``G = (U ⊔ V, E)``: one null ``⊥_t`` per node, with
*non-uniform* domain ``dom(⊥_t) = E(t)`` (its incident edges, as
constants); facts ``R(⊥_u)`` for ``u ∈ U`` and ``S(⊥_v)`` for ``v ∈ V``.
The result is a Codd table, valuations are exactly the assignments of
``G``, and ``ν(D) |= R(x) ∧ S(x)`` iff the assignment is *not* avoiding
(two adjacent nodes pick the same edge — one from each side, since ``G``
is bipartite).  Hence

``#Avoidance(G) = #assignments(G) - #ValCd(R(x)∧S(x))(D_G)``.

The chain behind it — Holant([1,1,0]|[0,1,0,0]) -> #Avoidance on 3-regular
multigraphs (Prop. A.3, via merging) -> bipartite graphs (Prop. A.8, via
subdivision) — lives in :mod:`repro.graphs.avoidance`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.patterns import PATTERN_SHARED
from repro.core.query import BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_valuations_brute
from repro.graphs.graph import Graph

#: The query of Prop. 3.5.
QUERY: BCQ = PATTERN_SHARED

Oracle = Callable[[IncompleteDatabase, BCQ], int]


def build_avoidance_db(graph: Graph) -> IncompleteDatabase:
    """The Codd table of Prop. 3.5 (non-uniform domains = incident edges).

    Every node must have at least one incident edge (otherwise it has no
    assignment and ``#Avoidance = 0``; we reject such inputs to keep the
    domains non-empty, mirroring the proof's implicit assumption).
    """
    partition = graph.bipartition()
    if partition is None:
        raise ValueError("Prop. 3.5 reduces from bipartite graphs")
    left, right = partition
    if any(graph.degree(node) == 0 for node in graph.nodes):
        raise ValueError("all nodes need an incident edge (assignments exist)")

    facts = []
    domains: dict[Null, list] = {}
    for node in graph.nodes:
        null = Null(("node", node))
        incident = [
            ("edge",) + tuple(sorted((node, neighbor), key=repr))
            for neighbor in graph.neighbors(node)
        ]
        domains[null] = incident
        relation = "R" if node in left else "S"
        facts.append(Fact(relation, [null]))
    return IncompleteDatabase(facts, dom=domains)


def count_avoiding_assignments_via_valuations(
    graph: Graph, oracle: Oracle = count_valuations_brute
) -> int:
    """``#Avoidance(G)`` recovered from a ``#ValCd(R(x)∧S(x))`` oracle."""
    db = build_avoidance_db(graph)
    total = count_total_valuations(db)
    non_avoiding = oracle(db, QUERY)
    return total - non_avoiding
