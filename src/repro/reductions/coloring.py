"""Prop. 3.4: ``#Valu(R(x,x))`` is #P-hard via counting 3-colorings.

For a graph ``G = (V, E)``: one null ``⊥_v`` per node with shared domain
``{1, 2, 3}`` (colors), and facts ``R(⊥_u, ⊥_v)``, ``R(⊥_v, ⊥_u)`` per
edge.  A valuation falsifies ``∃x R(x,x)`` exactly when no edge is
monochromatic, i.e. when it is a proper 3-coloring, so

``#3COL(G) = 3^{|V|} - #Valu(R(x,x))(D_G)``.

We expose the generalization to ``k`` colors (same argument; the paper
fixes ``k = 3`` because #3COL is the classical #P-hard problem [31]).
"""

from __future__ import annotations

from typing import Callable

from repro.core.patterns import PATTERN_REPEAT
from repro.core.query import BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_valuations_brute
from repro.graphs.graph import Graph

#: The query of Prop. 3.4.
QUERY: BCQ = PATTERN_REPEAT

Oracle = Callable[[IncompleteDatabase, BCQ], int]


def build_three_coloring_db(
    graph: Graph, num_colors: int = 3
) -> IncompleteDatabase:
    """The uniform incomplete database of Prop. 3.4 (domain ``1..k``)."""
    facts = []
    node_null = {node: Null(("node", node)) for node in graph.nodes}
    for u, v in graph.edges:
        facts.append(Fact("R", [node_null[u], node_null[v]]))
        facts.append(Fact("R", [node_null[v], node_null[u]]))
    # Isolated nodes still carry a color choice; keep their nulls in play
    # with a self-pair-free placeholder?  No: the paper's count only needs
    # the nulls appearing in the table, so isolated nodes contribute a
    # factor k handled by the caller.  We keep the table exactly as in the
    # proof (edges only).
    return IncompleteDatabase.uniform(
        facts, range(1, num_colors + 1)
    )


def count_colorings_via_valuations(
    graph: Graph,
    num_colors: int = 3,
    oracle: Oracle = count_valuations_brute,
) -> int:
    """``#kCOL(G)`` recovered from a ``#Valu(R(x,x))`` oracle (Prop. 3.4).

    ``oracle`` defaults to brute force — i.e. we *run* the Turing reduction
    of the proof; tests compare the result with the direct coloring
    counter.
    """
    db = build_three_coloring_db(graph, num_colors)
    total = count_total_valuations(db)
    monochromatic = oracle(db, QUERY)
    colorings_of_edge_nodes = total - monochromatic
    isolated = sum(1 for node in graph.nodes if graph.degree(node) == 0)
    return colorings_of_edge_nodes * num_colors**isolated
