"""Executable versions of every reduction in the paper.

Each module turns one hardness proof into code: a builder that constructs
the incomplete database from the source-problem instance, and a recovery
function expressing the count identity the proof establishes.  The test
suite runs every reduction end-to-end against the exact brute-force oracles
of :mod:`repro.graphs` / :mod:`repro.complexity`, which is the executable
content of the corresponding #P-/SpanP-hardness theorem.

| module            | result      | identity                                        |
|-------------------|-------------|-------------------------------------------------|
| ``coloring``      | Prop. 3.4   | ``#3COL = total - #Valu(R(x,x))``               |
| ``independent_set``| Prop. 3.8  | ``#IS = 2^n - #Valu(path / double edge)``       |
| ``independent_set``| Prop. 4.5a | ``#Compu = 2^n + #IS``                          |
| ``avoidance``     | Prop. 3.5   | ``#Avoid = total - #ValCd(R(x)∧S(x))``          |
| ``vertex_cover``  | Prop. 4.2   | ``#VC = #CompCd(R(x))`` (parsimonious)          |
| ``bis``           | Prop. 3.11  | ``#BIS`` via surjection linear system           |
| ``pseudoforest``  | Prop. 4.5b  | ``#PF = #CompuCd(R(x,y))``                      |
| ``gap3col``       | Prop. 5.6   | 3-colorable iff 8 (else 7) completions          |
| ``spanp``         | Thm. 6.3    | ``#k3SAT = #Compu(¬q)`` (parsimonious)          |
| ``hamiltonian``   | Thm. 6.4    | ``#HamSubgraphs = #Valu(q_ESO)``                |
| ``pattern``       | Lem. 3.3/4.1| ``#Val/#Comp(q')(D') = #Val/#Comp(q)(f(D'))``   |
"""

from repro.reductions.coloring import (
    build_three_coloring_db,
    count_colorings_via_valuations,
)
from repro.reductions.independent_set import (
    build_is_completion_db,
    build_is_double_edge_db,
    build_is_path_db,
    count_independent_sets_via_completions,
    count_independent_sets_via_valuations,
)
from repro.reductions.avoidance import (
    build_avoidance_db,
    count_avoiding_assignments_via_valuations,
)
from repro.reductions.vertex_cover import (
    build_vertex_cover_db,
    count_vertex_covers_via_completions,
)
from repro.reductions.bis import count_bis_via_valuations
from repro.reductions.pseudoforest import (
    build_pseudoforest_db,
    count_pseudoforests_via_completions,
)
from repro.reductions.gap3col import (
    build_gap_db,
    decide_three_colorability_via_approximation,
    is_three_colorable_via_completions,
)
from repro.reductions.spanp import (
    NEGATED_QUERY,
    SPANP_QUERY,
    build_k3sat_db,
    count_k3sat_via_completions,
)
from repro.reductions.hamiltonian import (
    build_hamiltonian_db,
    count_ham_subgraphs_via_valuations,
    make_hamiltonian_query,
)
from repro.reductions.pattern import transfer_database

__all__ = [
    "build_three_coloring_db",
    "count_colorings_via_valuations",
    "build_is_completion_db",
    "build_is_double_edge_db",
    "build_is_path_db",
    "count_independent_sets_via_completions",
    "count_independent_sets_via_valuations",
    "build_avoidance_db",
    "count_avoiding_assignments_via_valuations",
    "build_vertex_cover_db",
    "count_vertex_covers_via_completions",
    "count_bis_via_valuations",
    "build_pseudoforest_db",
    "count_pseudoforests_via_completions",
    "build_gap_db",
    "decide_three_colorability_via_approximation",
    "is_three_colorable_via_completions",
    "NEGATED_QUERY",
    "SPANP_QUERY",
    "build_k3sat_db",
    "count_k3sat_via_completions",
    "build_hamiltonian_db",
    "count_ham_subgraphs_via_valuations",
    "make_hamiltonian_query",
    "transfer_database",
]
