"""Theorem 6.3: ``#Compu(¬q)`` is SpanP-complete — via ``#k3SAT``.

The fixed sjfBCQ (Eq. 8 of the paper) over the schema
``σ = {S} ∪ {C_abc : (a,b,c) ∈ {0,1}³}`` is

``q = S(u, v) ∧ ⋀_{(a,b,c)} C_abc(x, y, z)``

(one shared triple ``x,y,z`` across the eight ``C`` atoms; all relations
distinct, so ``q`` is self-join-free).

For a 3-CNF ``F`` over ``x_1..x_n`` and ``1 <= k <= n``:

* each relation ``C_abc`` holds the **seven** ground triples agreeing with
  ``(a,b,c)`` in some coordinate;
* each clause contributes the fact ``C_{a1a2a3}(⊥_{y1}, ⊥_{y2}, ⊥_{y3})``
  where ``a_i = 1`` iff literal ``i`` is positive — the fact becomes the
  missing eighth triple exactly when the clause is falsified;
* ``S(i, ⊥_{x_i})`` for ``i <= k`` records the prefix;
* uniform domain ``{0, 1}``.

A completion falsifies ``q`` iff the underlying assignment satisfies ``F``,
and two satisfying assignments yield the same completion iff they agree on
``x_1..x_k`` — so the reduction is parsimonious:

``#k3SAT(F, k) = #Compu(¬q)(D_{F,k})``.

Lemma D.1 (used by Prop. 6.1) is also provided: padding every relation
with a fresh-constant fact makes *every* completion satisfy ``q``, hence
``#Compu(σ)(D) = #Compu(q)(D')`` parsimoniously.
"""

from __future__ import annotations

from itertools import product
from typing import Callable

from repro.core.query import Atom, BCQ, Negation
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute
from repro.complexity.cnf import CNF3


def _relation_name(bits: tuple[int, int, int]) -> str:
    return "C%d%d%d" % bits


def _make_spanp_query() -> BCQ:
    atoms = [Atom("S", ["u", "v"])]
    for bits in product((0, 1), repeat=3):
        atoms.append(Atom(_relation_name(bits), ["x", "y", "z"]))
    return BCQ(atoms)


#: The fixed sjfBCQ of Eq. (8).
SPANP_QUERY: BCQ = _make_spanp_query()

#: The SpanP-complete counting query of Theorem 6.3.
NEGATED_QUERY: Negation = Negation(SPANP_QUERY)

Oracle = Callable[[IncompleteDatabase, Negation], int]


def _agreeing_triples(bits: tuple[int, int, int]) -> list[tuple[int, int, int]]:
    """The seven triples sharing at least one coordinate with ``bits``."""
    return [
        triple
        for triple in product((0, 1), repeat=3)
        if any(triple[i] == bits[i] for i in range(3))
    ]


def build_k3sat_db(formula: CNF3, k: int) -> IncompleteDatabase:
    """The Theorem 6.3 database ``D_{F,k}`` (uniform domain ``{0,1}``)."""
    if not 1 <= k <= formula.num_variables:
        raise ValueError("k must satisfy 1 <= k <= n")
    facts = []
    for bits in product((0, 1), repeat=3):
        for triple in _agreeing_triples(bits):
            facts.append(Fact(_relation_name(bits), list(triple)))
    variable_null = {
        index: Null(("x", index))
        for index in range(1, formula.num_variables + 1)
    }
    for clause in formula.clauses:
        bits = clause.sign_tuple()
        facts.append(
            Fact(
                _relation_name(bits),
                [variable_null[v] for v in clause.variables],
            )
        )
    for index in range(1, k + 1):
        facts.append(Fact("S", [("i", index), variable_null[index]]))
    return IncompleteDatabase.uniform(facts, (0, 1))


def count_k3sat_via_completions(
    formula: CNF3, k: int, oracle: Oracle = count_completions_brute
) -> int:
    """``#k3SAT(F, k) = #Compu(¬q)(D_{F,k})`` — parsimonious (Thm. 6.3)."""
    db = build_k3sat_db(formula, k)
    return oracle(db, NEGATED_QUERY)


def pad_with_fresh_facts(db: IncompleteDatabase) -> IncompleteDatabase:
    """The Lemma D.1 padding: add ``S(f,f)`` and ``C_abc(f,f,f)`` on a
    fresh constant so every completion satisfies ``SPANP_QUERY``.

    Then ``#Compu(σ)(db) = #Compu(q)(padded)`` parsimoniously, which is the
    accounting step behind Prop. 6.1 (``#Compu(q)`` outside #P unless
    NP ⊆ SPP).
    """
    fresh = ("fresh", "f")
    facts = list(db.facts)
    facts.append(Fact("S", [fresh, fresh]))
    for bits in product((0, 1), repeat=3):
        facts.append(Fact(_relation_name(bits), [fresh, fresh, fresh]))
    return IncompleteDatabase.uniform(facts, db.uniform_domain)
