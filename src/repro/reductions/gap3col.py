"""Prop. 5.6: no FPRAS for ``#Compu(R(x,x))`` / ``#Compu(R(x,y))`` unless
NP = RP — the 3-colorability gap gadget.

The constructed uniform database over one binary relation (domain
``{1,2,3}``) has **8** completions when ``G`` is 3-colorable and **7**
otherwise:

* *encoding facts* ``R(⊥_u, ⊥_v)``/``R(⊥_v, ⊥_u)`` per edge;
* the six *triangle facts* ``R(i, j)``, ``i != j``;
* three *auxiliary* null pairs making every self-loop pattern reachable;
* ``R(c, c)`` on a fresh constant (so both queries hold everywhere).

A completion is the triangle plus a set of self-loops (always at least one
unless the encoding nulls form a proper 3-coloring), so an approximation
with relative error 1/16 would separate 8 from 7 and decide 3-colorability
in BPP — implying NP = RP.  :func:`decide_three_colorability_via_approximation`
executes that argument literally.
"""

from __future__ import annotations

from typing import Callable

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute
from repro.graphs.graph import Graph

QUERY = BCQ([Atom("R", ["x", "x"])])

Oracle = Callable[[IncompleteDatabase, BCQ], int]

FRESH = ("fresh", "c")


def build_gap_db(graph: Graph) -> IncompleteDatabase:
    """The Prop. 5.6 gadget database for ``graph``."""
    facts = []
    node_null = {node: Null(("node", node)) for node in graph.nodes}
    for u, v in graph.edges:  # encoding facts
        facts.append(Fact("R", [node_null[u], node_null[v]]))
        facts.append(Fact("R", [node_null[v], node_null[u]]))
    for i in (1, 2, 3):  # triangle facts
        for j in (1, 2, 3):
            if i != j:
                facts.append(Fact("R", [i, j]))
    for i in (1, 2, 3):  # auxiliary facts
        first = Null(("aux", i))
        second = Null(("aux-prime", i))
        facts.append(Fact("R", [first, second]))
        facts.append(Fact("R", [second, first]))
    facts.append(Fact("R", [FRESH, FRESH]))
    return IncompleteDatabase.uniform(facts, (1, 2, 3))


def is_three_colorable_via_completions(
    graph: Graph, oracle: Oracle = count_completions_brute
) -> bool:
    """Decide 3-colorability from an exact ``#Compu`` oracle: the gadget
    has 8 completions iff ``G`` is 3-colorable, 7 otherwise."""
    db = build_gap_db(graph)
    completions = oracle(db, QUERY)
    if completions not in (7, 8):
        raise ArithmeticError(
            "gadget must have 7 or 8 completions, oracle said %d"
            % completions
        )
    return completions == 8


def decide_three_colorability_via_approximation(
    graph: Graph,
    approximator: Callable[[IncompleteDatabase, BCQ, float], float],
    epsilon: float = 1.0 / 16.0,
) -> bool:
    """The BPP algorithm of Prop. 5.6: accept iff the (claimed) 1/16-FPRAS
    output is >= 7.5.

    ``approximator(db, query, epsilon)`` returns the approximate completion
    count.  With a genuine 1/16-approximation this decides 3-colorability
    with probability >= 3/4 — which is why no FPRAS can exist unless
    NP = RP.
    """
    db = build_gap_db(graph)
    estimate = approximator(db, QUERY, epsilon)
    return estimate >= 7.5
