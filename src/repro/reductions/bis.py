"""Prop. 3.11: ``#ValuCd(R(x) ∧ S(x,y) ∧ T(y))`` is #P-hard via ``#BIS``.

The most intricate reduction of the paper: a Turing reduction making
``(n+1)²`` oracle calls and inverting a linear system.

For a bipartite graph ``G = (X ⊔ Y, E)`` with ``|X| = |Y| = n`` and
``0 <= a, b <= n``, the Codd table ``D_{a,b}`` has

* ground facts ``S(a_i, a_j)`` for each edge ``(x_i, y_j)``,
* ``R(⊥_1..⊥_a)`` and ``T(⊥'_1..⊥'_b)`` — Codd nulls with the uniform
  domain ``{a_1..a_n}``.

Writing ``C_{a,b}`` for the number of valuations of ``D_{a,b}``
*falsifying* the query, and ``Z_{i,j}`` for the number of independent
pairs ``(S1, S2)`` with ``|S1| = i``, ``|S2| = j``:

``C_{a,b} = sum_{i,j} surj(a, i) * surj(b, j) * Z_{i,j}``

— a linear system whose matrix is the Kronecker square of the triangular
surjection matrix, hence invertible; solving it recovers the ``Z_{i,j}``
and ``#BIS(G) = sum Z_{i,j}``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from repro.core.patterns import PATTERN_PATH
from repro.core.query import BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.db.valuation import count_total_valuations
from repro.exact.brute import count_valuations_brute
from repro.graphs.graph import Graph, Node
from repro.util.combinatorics import surjections
from repro.util.linear import solve_rational_system

#: The query of Prop. 3.11.
QUERY: BCQ = PATTERN_PATH

Oracle = Callable[[IncompleteDatabase, BCQ], int]


def _constant(index: int):
    return ("a", index)


def build_bis_db(
    graph: Graph,
    left: list[Node],
    right: list[Node],
    a: int,
    b: int,
) -> IncompleteDatabase:
    """The Codd table ``D_{a,b}`` of Prop. 3.11 (parts must be equal-size)."""
    n = len(left)
    if len(right) != n:
        raise ValueError("parts must have equal size (pad beforehand)")
    left_index = {node: i + 1 for i, node in enumerate(left)}
    right_index = {node: i + 1 for i, node in enumerate(right)}
    facts = []
    for u, v in graph.edges:
        if u in left_index and v in right_index:
            facts.append(Fact("S", [_constant(left_index[u]), _constant(right_index[v])]))
        elif v in left_index and u in right_index:
            facts.append(Fact("S", [_constant(left_index[v]), _constant(right_index[u])]))
        else:
            raise ValueError("edge %r does not cross the given parts" % ((u, v),))
    for i in range(1, a + 1):
        facts.append(Fact("R", [Null(("r", i))]))
    for i in range(1, b + 1):
        facts.append(Fact("T", [Null(("t", i))]))
    domain = [_constant(i) for i in range(1, n + 1)]
    return IncompleteDatabase.uniform(facts, domain)


def count_bis_via_valuations(
    graph: Graph, oracle: Oracle = count_valuations_brute
) -> int:
    """``#BIS(G)`` recovered from a ``#ValuCd`` oracle (Prop. 3.11).

    Pads the smaller part with isolated nodes (each padding node doubles
    the independent-set count, divided back out at the end), performs the
    ``(n+1)²`` oracle calls, and solves the surjection system exactly over
    the rationals.
    """
    partition = graph.bipartition()
    if partition is None:
        raise ValueError("#BIS requires a bipartite graph")
    left = sorted(partition[0], key=repr)
    right = sorted(partition[1], key=repr)
    padding = abs(len(left) - len(right))
    pad_side = left if len(left) < len(right) else right
    for index in range(padding):
        pad_side.append(("pad", index))
    n = len(left)

    if n == 0:
        return 1  # the empty graph has exactly the empty independent set

    # C[a][b]: valuations of D_{a,b} falsifying the query.
    falsifying: dict[tuple[int, int], int] = {}
    for a in range(n + 1):
        for b in range(n + 1):
            db = build_bis_db(graph, left, right, a, b)
            total = count_total_valuations(db)
            falsifying[(a, b)] = total - oracle(db, QUERY)

    # Solve (A' ⊗ A') Z = C with A'[a][i] = surj(a, i).
    pairs = [(i, j) for i in range(n + 1) for j in range(n + 1)]
    matrix = [
        [surjections(a, i) * surjections(b, j) for (i, j) in pairs]
        for (a, b) in pairs
    ]
    rhs = [falsifying[pair] for pair in pairs]
    solution = solve_rational_system(matrix, rhs)

    total = Fraction(0)
    for value in solution:
        if value.denominator != 1 or value < 0:
            raise ArithmeticError(
                "recovered Z values must be non-negative integers; "
                "got %r (oracle inconsistent?)" % (value,)
            )
        total += value
    bis_padded = int(total)
    # Each padding node is isolated: it doubles the count.
    quotient, remainder = divmod(bis_padded, 2**padding)
    if remainder:
        raise ArithmeticError("padding correction failed; oracle inconsistent")
    return quotient
