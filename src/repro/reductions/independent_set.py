"""Props. 3.8 and 4.5(a): hardness via counting independent sets.

Prop. 3.8 (valuations, uniform, naive): encode ``G`` in a binary relation
``S`` (both edge directions) over node-nulls with domain ``{0, 1}``; a
valuation picks the node subset ``S_ν = {v : ν(⊥_v) = 1}``:

* with facts ``R(1)`` and ``T(1)``, the query ``R(x) ∧ S(x,y) ∧ T(y)``
  holds iff some edge has both endpoints picked, so
  ``#IS(G) = 2^{|V|} - #Valu(q)(D)``;
* with the fact ``R2(1,1)``, the same bijection works for
  ``R2(x,y) ∧ S(x,y)``.

Prop. 4.5(a) (completions, uniform, naive): facts ``R(u, ⊥_u)`` pin every
valuation to a distinct completion, the edge facts plus ``R(⊥,⊥)`` and the
padding facts ``R(0,0), R(0,1), R(1,0)`` arrange exactly ``2^{|V|}``
completions containing ``R(1,1)`` and ``#IS(G)`` completions without it:
``#Compu(R(x,x))(D) = #Compu(R(x,y))(D) = 2^{|V|} + #IS(G)``.
"""

from __future__ import annotations

from typing import Callable

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null
from repro.exact.brute import count_completions_brute, count_valuations_brute
from repro.graphs.graph import Graph

#: Queries of Prop. 3.8.
PATH_QUERY = BCQ([Atom("R", ["x"]), Atom("S", ["x", "y"]), Atom("T", ["y"])])
DOUBLE_EDGE_QUERY = BCQ([Atom("R2", ["x", "y"]), Atom("S", ["x", "y"])])

ValOracle = Callable[[IncompleteDatabase, BCQ], int]
CompOracle = Callable[[IncompleteDatabase, BCQ], int]


def _edge_facts(graph: Graph) -> tuple[list[Fact], dict]:
    node_null = {node: Null(("node", node)) for node in graph.nodes}
    facts = []
    for u, v in graph.edges:
        facts.append(Fact("S", [node_null[u], node_null[v]]))
        facts.append(Fact("S", [node_null[v], node_null[u]]))
    return facts, node_null


def build_is_path_db(graph: Graph) -> IncompleteDatabase:
    """Prop. 3.8 database for ``R(x) ∧ S(x,y) ∧ T(y)``."""
    facts, _ = _edge_facts(graph)
    facts.append(Fact("R", [1]))
    facts.append(Fact("T", [1]))
    return IncompleteDatabase.uniform(facts, (0, 1))


def build_is_double_edge_db(graph: Graph) -> IncompleteDatabase:
    """Prop. 3.8 database for ``R2(x,y) ∧ S(x,y)``."""
    facts, _ = _edge_facts(graph)
    facts.append(Fact("R2", [1, 1]))
    return IncompleteDatabase.uniform(facts, (0, 1))


def count_independent_sets_via_valuations(
    graph: Graph,
    query: BCQ = PATH_QUERY,
    oracle: ValOracle = count_valuations_brute,
) -> int:
    """``#IS(G)`` recovered from a ``#Valu`` oracle (Prop. 3.8).

    ``query`` selects which of the two hard patterns to exercise.
    """
    if query == PATH_QUERY:
        db = build_is_path_db(graph)
    elif query == DOUBLE_EDGE_QUERY:
        db = build_is_double_edge_db(graph)
    else:
        raise ValueError("query must be one of the Prop. 3.8 queries")
    nulls_in_play = len(db.nulls)
    satisfying = oracle(db, query)
    # Isolated nodes have no null in the table; they are unconstrained and
    # double the independent-set count each.
    isolated = graph.num_nodes - nulls_in_play
    return (2**nulls_in_play - satisfying) * 2**isolated


def build_is_completion_db(graph: Graph) -> IncompleteDatabase:
    """Prop. 4.5(a) database over the single binary relation ``R``."""
    node_null = {node: Null(("node", node)) for node in graph.nodes}
    facts = [Fact("R", [("n", node), node_null[node]]) for node in graph.nodes]
    for u, v in graph.edges:
        facts.append(Fact("R", [node_null[u], node_null[v]]))
        facts.append(Fact("R", [node_null[v], node_null[u]]))
    facts.append(Fact("R", [0, 0]))
    facts.append(Fact("R", [0, 1]))
    facts.append(Fact("R", [1, 0]))
    facts.append(Fact("R", [Null("extra"), Null("extra")]))
    return IncompleteDatabase.uniform(facts, (0, 1))


def count_independent_sets_via_completions(
    graph: Graph,
    oracle: CompOracle | None = None,
) -> int:
    """``#IS(G)`` recovered from a ``#Compu`` oracle (Prop. 4.5(a)):
    ``#IS = #Compu(R(x,x))(D) - 2^{|V|}``."""
    db = build_is_completion_db(graph)
    query = BCQ([Atom("R", ["x", "x"])])
    if oracle is None:
        completions = count_completions_brute(db, query)
    else:
        completions = oracle(db, query)
    return completions - 2**graph.num_nodes
