"""Lemmas 3.3 and 4.1: the pattern reductions, executable.

If ``q'`` is a pattern of ``q`` (Definition 3.1), any input ``D'`` of
``#Val(q')`` transforms into an input ``D`` of ``#Val(q)`` with the *same*
nulls and domains such that, for every valuation ``ν``,

``ν(D') |= q'  iff  ν(D) |= q``           (Lemma 3.3, parsimonious)
``ν1(D') = ν2(D')  iff  ν1(D) = ν2(D)``   (Lemma 4.1, hence also #Comp)

Construction (following the proof of Lemma 3.3): fix a pattern embedding.
Let ``A`` be all constants appearing in ``D'`` or in a null domain.  For a
query atom matched by pattern atom ``k`` and each fact ``t'`` of the
pattern relation, emit every fact that copies ``t'`` through the kept
positions and fills each deleted position with every constant of ``A``
(cartesian fill); unmatched query relations are filled with *all* tuples
over ``A``.

Note on Codd preservation: the paper asserts the construction preserves
Codd tables; that holds when the embedding deletes no variable occurrence
from the kept atoms (renamings, reorderings and whole-atom deletions
only).  When occurrences *are* deleted, the cartesian fill necessarily
duplicates any null of ``t'`` across the filled tuples, so the output is a
naive table; the counts are preserved either way, which is what the tests
verify.
"""

from __future__ import annotations

from itertools import product

from repro.core.patterns import PatternEmbedding, find_pattern_embedding
from repro.core.query import BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Term


def _constant_pool(db: IncompleteDatabase) -> list[Term]:
    """``A``: constants appearing in ``D'`` or in some null domain."""
    pool = set(db.constants())
    for null in db.nulls:
        pool |= set(db.domain_of(null))
    if db.is_uniform:
        pool |= set(db.uniform_domain)
    return sorted(pool, key=repr)


def transfer_database(
    pattern: BCQ,
    query: BCQ,
    db: IncompleteDatabase,
    embedding: PatternEmbedding | None = None,
) -> IncompleteDatabase:
    """The Lemma 3.3 / 4.1 transformation of ``D'`` (for ``q'``) into ``D``
    (for ``q``).

    Raises ``ValueError`` when ``pattern`` is not a pattern of ``query``.
    The output keeps the input's domain structure (uniform stays uniform,
    per-null domains are carried over unchanged).
    """
    if embedding is None:
        embedding = find_pattern_embedding(pattern, query)
    if embedding is None:
        raise ValueError(
            "%r is not a pattern of %r (Definition 3.1)" % (pattern, query)
        )
    stray = db.relations - pattern.relations
    if stray:
        raise ValueError(
            "input database mentions relations outside sig(q'): %s"
            % sorted(stray)
        )
    pool = _constant_pool(db)
    if not pool:
        # Degenerate but possible: no constants anywhere.  Any fresh
        # constant works for the cartesian fill (it can never be matched by
        # a null, but deleted positions only need *some* value).
        pool = [("fill", 0)]

    facts: list[Fact] = []
    matched_query_atoms = set(embedding.atom_map)
    for k, pattern_atom in enumerate(pattern.atoms):
        query_atom = query.atoms[embedding.atom_map[k]]
        position_map = embedding.position_maps[k]  # pattern pos -> query pos
        copy_source = {dst: src for src, dst in position_map.items()}
        wildcard_positions = [
            i for i in range(query_atom.arity) if i not in copy_source
        ]
        for fact in sorted(db.relation(pattern_atom.relation)):
            if fact.arity != pattern_atom.arity:
                raise ValueError(
                    "fact %r does not match pattern atom %r"
                    % (fact, pattern_atom)
                )
            for fill in product(pool, repeat=len(wildcard_positions)):
                terms: list[Term] = [None] * query_atom.arity
                for dst, src in copy_source.items():
                    terms[dst] = fact.terms[src]
                for position, value in zip(wildcard_positions, fill):
                    terms[position] = value
                facts.append(Fact(query_atom.relation, terms))

    for index, query_atom in enumerate(query.atoms):
        if index in matched_query_atoms:
            continue
        for tuple_values in product(pool, repeat=query_atom.arity):
            facts.append(Fact(query_atom.relation, tuple_values))

    if db.is_uniform:
        return IncompleteDatabase.uniform(facts, db.uniform_domain)
    return IncompleteDatabase(
        facts, dom={null: db.domain_of(null) for null in db.nulls}
    )
