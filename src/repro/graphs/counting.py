"""Exact brute-force counters for the graph problems used as reduction
sources.

These are the "oracles" against which the paper's reductions are validated:
``#IS`` (independent sets, Prop. 3.8/4.5), ``#VC`` (vertex covers,
Prop. 4.2), ``#3COL``/``#kCOL`` (colorings, Prop. 3.4/5.6) and the
size-stratified independent-pair counts ``Z_{i,j}`` of Prop. 3.11.

All counters use bitmask enumeration and are exponential by design — the
problems are #P-hard; the point is exactness on small instances.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.graphs.graph import Graph, Node


def _neighbor_masks(graph: Graph) -> tuple[list[Node], list[int]]:
    """Index nodes and build per-node neighbor bitmasks."""
    nodes = graph.nodes
    index = {node: i for i, node in enumerate(nodes)}
    masks = [0] * len(nodes)
    for u, v in graph.edges:
        masks[index[u]] |= 1 << index[v]
        masks[index[v]] |= 1 << index[u]
    return nodes, masks


def is_independent_set(graph: Graph, subset: Iterable[Node]) -> bool:
    """True when no two nodes of ``subset`` are adjacent."""
    chosen = list(subset)
    chosen_set = set(chosen)
    if len(chosen_set) != len(chosen):
        raise ValueError("subset contains duplicates")
    for node in chosen_set:
        if graph.neighbors(node) & chosen_set:
            return False
    return True


def is_vertex_cover(graph: Graph, subset: Iterable[Node]) -> bool:
    """True when every edge has at least one endpoint in ``subset``."""
    cover = set(subset)
    return all(u in cover or v in cover for u, v in graph.edges)


def count_independent_sets(graph: Graph) -> int:
    """``#IS(G)``: number of independent sets, the empty set included.

    Branch-and-bound on the node list: at each node either exclude it or
    include it and discard its neighbors.  Far faster than the naive
    ``2^n`` scan, while remaining exact.
    """
    nodes, masks = _neighbor_masks(graph)
    n = len(nodes)

    def count_from(available: int, lowest: int) -> int:
        # Strip leading unavailable positions.
        while lowest < n and not (available >> lowest) & 1:
            lowest += 1
        if lowest >= n:
            return 1
        without = count_from(available & ~(1 << lowest), lowest + 1)
        with_node = count_from(
            available & ~(1 << lowest) & ~masks[lowest], lowest + 1
        )
        return without + with_node

    return count_from((1 << n) - 1, 0)


def count_vertex_covers(graph: Graph) -> int:
    """``#VC(G)``.

    Uses the complementation bijection the paper invokes in Section 5.2:
    ``S`` is an independent set iff ``V \\ S`` is a vertex cover, hence
    ``#VC(G) = #IS(G)``.
    """
    return count_independent_sets(graph)


def count_independent_sets_naive(graph: Graph) -> int:
    """Reference ``2^n`` scan; kept as a cross-check for the fast counter."""
    nodes, masks = _neighbor_masks(graph)
    n = len(nodes)
    count = 0
    for subset in range(1 << n):
        ok = True
        remaining = subset
        while remaining:
            low = remaining & -remaining
            position = low.bit_length() - 1
            if masks[position] & subset:
                ok = False
                break
            remaining ^= low
        if ok:
            count += 1
    return count


def count_colorings(graph: Graph, num_colors: int) -> int:
    """Number of proper ``num_colors``-colorings of ``graph``.

    Backtracking over nodes in insertion order; exact, exponential worst
    case.  ``count_colorings(G, 3)`` is the ``#3COL`` oracle of Prop. 3.4.
    """
    if num_colors < 0:
        raise ValueError("number of colors must be non-negative")
    nodes, masks = _neighbor_masks(graph)
    n = len(nodes)
    assignment = [-1] * n

    def count_from(position: int) -> int:
        if position == n:
            return 1
        total = 0
        for color in range(num_colors):
            conflict = False
            neighbor_mask = masks[position]
            while neighbor_mask:
                low = neighbor_mask & -neighbor_mask
                neighbor = low.bit_length() - 1
                if neighbor < position and assignment[neighbor] == color:
                    conflict = True
                    break
                neighbor_mask ^= low
            if conflict:
                continue
            assignment[position] = color
            total += count_from(position + 1)
            assignment[position] = -1
        return total

    return count_from(0)


def is_colorable(graph: Graph, num_colors: int) -> bool:
    """Decision version (used by the Prop. 5.6 gap-gadget experiment)."""
    return count_colorings(graph, num_colors) > 0


def count_independent_pairs_by_size(
    graph: Graph, left: Sequence[Node], right: Sequence[Node]
) -> dict[tuple[int, int], int]:
    """The numbers ``Z_{i,j}`` of Prop. 3.11.

    For a bipartite graph with parts ``left``/``right``, ``Z_{i,j}`` counts
    pairs ``(S1, S2)``, ``S1 subset of left`` of size ``i`` and ``S2 subset
    of right`` of size ``j``, such that ``(S1 x S2)`` contains no edge.
    ``#BIS(G) = sum_{i,j} Z_{i,j}`` (claim (*) in the proof).
    """
    left = list(left)
    right = list(right)
    left_index = {node: i for i, node in enumerate(left)}
    right_index = {node: i for i, node in enumerate(right)}
    # neighbor mask of each left node within the right part
    masks = [0] * len(left)
    for u, v in graph.edges:
        if u in left_index and v in right_index:
            masks[left_index[u]] |= 1 << right_index[v]
        elif v in left_index and u in right_index:
            masks[left_index[v]] |= 1 << right_index[u]
        else:
            raise ValueError("graph is not bipartite over the given parts")

    counts: dict[tuple[int, int], int] = {
        (i, j): 0
        for i in range(len(left) + 1)
        for j in range(len(right) + 1)
    }
    for s1 in range(1 << len(left)):
        forbidden = 0
        remaining = s1
        size1 = 0
        while remaining:
            low = remaining & -remaining
            forbidden |= masks[low.bit_length() - 1]
            size1 += 1
            remaining ^= low
        allowed = ((1 << len(right)) - 1) & ~forbidden
        # Count subsets of `allowed` stratified by size: C(popcount, j).
        free = bin(allowed).count("1")
        for size2 in range(free + 1):
            key = (size1, size2)
            counts[key] = counts.get(key, 0) + math.comb(free, size2)
    return counts


def count_bipartite_independent_sets(graph: Graph) -> int:
    """``#BIS(G)`` for a bipartite graph (used as the Prop. 3.11 oracle)."""
    if not graph.is_bipartite():
        raise ValueError("#BIS requires a bipartite graph")
    return count_independent_sets(graph)
