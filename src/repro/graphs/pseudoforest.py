"""Pseudoforests and the bicircular rank function (Appendix B.4-B.5).

A graph is a *pseudoforest* when every connected component contains at most
one cycle (Definition B.3).  Equivalently (Lemma B.4) it admits an
orientation in which every node has out-degree at most one — which we decide
with bipartite matching, giving an independent implementation used to
cross-check the component-census definition in the tests.

``#PF`` — the number of edge subsets ``S`` with ``G[S]`` a pseudoforest — is
the hard source problem behind Prop. 4.5(b).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.graphs.graph import Edge, Graph
from repro.graphs.matching import has_perfect_left_matching


def _component_census(edges: list[Edge]) -> list[tuple[int, int]]:
    """``(num_nodes, num_edges)`` per connected component of ``(V(S), S)``."""
    parent: dict[object, object] = {}

    def find(x: object) -> object:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        parent.setdefault(u, u)
        parent.setdefault(v, v)
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_u] = root_v

    node_count: dict[object, int] = {}
    edge_count: dict[object, int] = {}
    for node in parent:
        node_count[find(node)] = node_count.get(find(node), 0) + 1
    for u, _v in edges:
        root = find(u)
        edge_count[root] = edge_count.get(root, 0) + 1
    return [
        (node_count[root], edge_count.get(root, 0)) for root in node_count
    ]


def is_pseudoforest_edge_set(edges: Iterable[Edge]) -> bool:
    """True when the graph spanned by ``edges`` is a pseudoforest.

    A component with ``n`` nodes and ``m`` edges has at most one cycle iff
    ``m <= n`` (a tree has ``m = n - 1``; one extra edge creates exactly one
    cycle; two extra edges force two).
    """
    census = _component_census(list(edges))
    return all(m <= n for n, m in census)


def has_outdegree_one_orientation(edges: Iterable[Edge]) -> bool:
    """Lemma B.4 criterion, decided independently via bipartite matching.

    An orientation with out-degree <= 1 assigns each edge a distinct owning
    endpoint, i.e. a matching of edges to nodes saturating all edges.
    """
    edge_list = list(edges)
    adjacency = {index: list(edge) for index, edge in enumerate(edge_list)}
    return has_perfect_left_matching(list(range(len(edge_list))), adjacency)


def count_induced_pseudoforests(graph: Graph) -> int:
    """``#PF(G)``: edge subsets ``S`` such that ``G[S]`` is a pseudoforest.

    Exact exponential enumeration (the problem is #P-hard, App. B.5); the
    empty subset counts, matching Definition B.3.
    """
    edges = graph.edges
    count = 0
    for size in range(len(edges) + 1):
        for subset in combinations(edges, size):
            if is_pseudoforest_edge_set(subset):
                count += 1
    return count


def bicircular_rank(graph: Graph, edge_subset: Iterable[Edge]) -> int:
    """Rank of an edge set in the bicircular matroid ``B(G)``.

    The independent sets of ``B(G)`` are the pseudoforest edge subsets
    (Definition B.9), so the rank of ``A`` is the size of a largest
    pseudoforest inside ``A``; per component of ``(V(A), A)`` that is
    ``min(#edges, #nodes)``.
    """
    subset = list(edge_subset)
    for edge in subset:
        if not graph.has_edge(*edge):
            raise ValueError("edge %r not in graph" % (edge,))
    census = _component_census(subset)
    return sum(min(m, n) for n, m in census)


def maximal_pseudoforest_size(graph: Graph) -> int:
    """``rk_{B(G)}(E)``: the size of a maximum pseudoforest of ``G``.

    Used by the k-stretch Tutte identity of Appendix B.5 (the paper notes it
    is polynomial-time computable; with the component census it is a direct
    formula).
    """
    return bicircular_rank(graph, graph.edges)
