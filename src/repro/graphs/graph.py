"""Simple graphs and multigraphs, matching the paper's Section 2 conventions.

A :class:`Graph` is finite, undirected, with no self-loops and no parallel
edges.  A :class:`Multigraph` (Appendix A.2) additionally allows parallel
edges — each edge is a distinct identified object ``e`` with endpoint set
``lambda(e) = {u, v}``, ``u != v`` — but still no self-loops.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Node = Hashable
Edge = tuple[Node, Node]


def _normalize_edge(u: Node, v: Node) -> Edge:
    """Canonical ordered representation of the undirected edge ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """A finite simple undirected graph.

    Nodes are arbitrary hashable labels.  Edges are stored canonically so
    ``{u, v}`` and ``{v, u}`` are the same edge.
    """

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[tuple[Node, Node]] = (),
    ) -> None:
        self._adjacency: dict[Node, set[Node]] = {}
        self._edges: set[Edge] = set()
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction --------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add an isolated node (no-op if present)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``; self-loops are rejected."""
        if u == v:
            raise ValueError("simple graphs cannot contain self-loops")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edges.add(_normalize_edge(u, v))

    # -- inspection ----------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        """Nodes in insertion order."""
        return list(self._adjacency)

    @property
    def edges(self) -> list[Edge]:
        """Canonically-ordered edge list (deterministic order)."""
        return sorted(self._edges, key=repr)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_edge(self, u: Node, v: Node) -> bool:
        return _normalize_edge(u, v) in self._edges if u != v else False

    def neighbors(self, node: Node) -> set[Node]:
        return set(self._adjacency[node])

    def degree(self, node: Node) -> int:
        return len(self._adjacency[node])

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __repr__(self) -> str:
        return "Graph(nodes=%d, edges=%d)" % (self.num_nodes, self.num_edges)

    # -- structure -----------------------------------------------------

    def connected_components(self) -> list[set[Node]]:
        """Node sets of connected components (DFS)."""
        seen: set[Node] = set()
        components: list[set[Node]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            stack = [start]
            component: set[Node] = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self._adjacency[node] - component)
            seen |= component
            components.append(component)
        return components

    def bipartition(self) -> tuple[set[Node], set[Node]] | None:
        """A 2-coloring ``(A, B)`` if the graph is bipartite, else ``None``."""
        color: dict[Node, int] = {}
        for start in self._adjacency:
            if start in color:
                continue
            color[start] = 0
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in color:
                        color[neighbor] = 1 - color[node]
                        stack.append(neighbor)
                    elif color[neighbor] == color[node]:
                        return None
        side_a = {node for node, c in color.items() if c == 0}
        side_b = {node for node, c in color.items() if c == 1}
        return side_a, side_b

    def is_bipartite(self) -> bool:
        return self.bipartition() is not None

    def subgraph_of_edges(self, edge_subset: Iterable[Edge]) -> "Graph":
        """The graph ``G[S]`` induced by an edge subset (Definition B.3):
        its nodes are exactly the endpoints of edges in ``S``."""
        subgraph = Graph()
        for u, v in edge_subset:
            if not self.has_edge(u, v):
                raise ValueError("edge %r not in graph" % ((u, v),))
            subgraph.add_edge(u, v)
        return subgraph

    def induced_subgraph(self, node_subset: Iterable[Node]) -> "Graph":
        """The node-induced subgraph ``G[S]`` (Definition D.4)."""
        keep = set(node_subset)
        unknown = keep - set(self._adjacency)
        if unknown:
            raise ValueError("nodes %r not in graph" % (sorted(map(repr, unknown)),))
        subgraph = Graph(nodes=keep)
        for u, v in self._edges:
            if u in keep and v in keep:
                subgraph.add_edge(u, v)
        return subgraph


class Multigraph:
    """A finite undirected multigraph without self-loops (Appendix A.2).

    Edges are explicit identifiers mapped to endpoint pairs, so parallel
    edges are distinct objects — exactly the ``(V, E, lambda)`` presentation
    in the paper.
    """

    def __init__(self) -> None:
        self._nodes: dict[Node, set[Hashable]] = {}
        self._endpoints: dict[Hashable, Edge] = {}
        self._next_id = 0

    @classmethod
    def from_graph(cls, graph: Graph) -> "Multigraph":
        """View a simple graph as a multigraph (no parallel edges)."""
        multigraph = cls()
        for node in graph.nodes:
            multigraph.add_node(node)
        for u, v in graph.edges:
            multigraph.add_edge(u, v)
        return multigraph

    def add_node(self, node: Node) -> None:
        self._nodes.setdefault(node, set())

    def add_edge(self, u: Node, v: Node, edge_id: Hashable = None) -> Hashable:
        """Add an edge between distinct nodes; returns its identifier."""
        if u == v:
            raise ValueError("multigraphs here cannot contain self-loops")
        if edge_id is None:
            edge_id = "e%d" % self._next_id
            self._next_id += 1
        if edge_id in self._endpoints:
            raise ValueError("duplicate edge id %r" % (edge_id,))
        self.add_node(u)
        self.add_node(v)
        self._endpoints[edge_id] = (u, v)
        self._nodes[u].add(edge_id)
        self._nodes[v].add(edge_id)
        return edge_id

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes)

    @property
    def edge_ids(self) -> list[Hashable]:
        return sorted(self._endpoints, key=repr)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._endpoints)

    def endpoints(self, edge_id: Hashable) -> Edge:
        """The pair ``lambda(e)`` of the edge's endpoints."""
        return self._endpoints[edge_id]

    def incident_edges(self, node: Node) -> set[Hashable]:
        """``E(u)``: identifiers of edges incident to ``node``."""
        return set(self._nodes[node])

    def degree(self, node: Node) -> int:
        return len(self._nodes[node])

    def is_regular(self, degree: int) -> bool:
        """True when every node has the given degree."""
        return all(self.degree(node) == degree for node in self._nodes)

    def parallel_classes(self) -> dict[Edge, list[Hashable]]:
        """Group edge ids by endpoint pair (parallel edges share a key)."""
        classes: dict[Edge, list[Hashable]] = {}
        for edge_id, (u, v) in self._endpoints.items():
            classes.setdefault(_normalize_edge(u, v), []).append(edge_id)
        return classes

    def __repr__(self) -> str:
        return "Multigraph(nodes=%d, edges=%d)" % (
            self.num_nodes,
            self.num_edges,
        )

    def iter_edges(self) -> Iterator[tuple[Hashable, Node, Node]]:
        """Yield ``(edge_id, u, v)`` triples in deterministic order."""
        for edge_id in self.edge_ids:
            u, v = self._endpoints[edge_id]
            yield edge_id, u, v
