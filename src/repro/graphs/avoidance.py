"""Avoiding assignments of multigraphs (Appendix A.2, Definition A.1).

An *assignment* of a multigraph maps every node to one of its incident
edges; it is *avoiding* when no edge is chosen by both of its endpoints.
``#Avoidance`` is the #P-hard source problem (Prop. A.3, via the Holant
framework) behind the hardness of ``#ValCd(R(x) ∧ S(x))`` (Prop. 3.5).

This module provides the exact counter plus the two graph transformations of
the appendix: the *merging* of a 2-3-regular bipartite graph (proof of
Prop. A.3) and the edge-subdivision of Prop. A.8, whose counting identity
``#Avoidance(G') = 2^{|E|-|V|} * #Avoidance(G)`` is verified in the tests.
"""

from __future__ import annotations

from typing import Hashable

from repro.graphs.graph import Graph, Multigraph, Node


def count_assignments(multigraph: Multigraph) -> int:
    """Total number of assignments: product of node degrees.

    Zero when some node is isolated (it has no incident edge to pick).
    """
    total = 1
    for node in multigraph.nodes:
        total *= multigraph.degree(node)
    return total


def count_avoiding_assignments(multigraph: Multigraph) -> int:
    """``#Avoidance``: exact backtracking count of avoiding assignments.

    Nodes pick incident edges one at a time; an edge picked by one endpoint
    is barred for the other endpoint.
    """
    nodes = multigraph.nodes
    chosen: dict[Node, Hashable] = {}

    def count_from(position: int) -> int:
        if position == len(nodes):
            return 1
        node = nodes[position]
        total = 0
        for edge_id in sorted(multigraph.incident_edges(node), key=repr):
            u, v = multigraph.endpoints(edge_id)
            other = v if u == node else u
            if chosen.get(other) == edge_id:
                continue
            chosen[node] = edge_id
            total += count_from(position + 1)
            del chosen[node]
        return total

    return count_from(0)


def merge_degree_two_nodes(graph: Graph) -> Multigraph:
    """The *merging* of a 2-3-regular bipartite graph (proof of Prop. A.3).

    Every node of degree 2 is removed and its two incident edges fused into
    a single edge between its two neighbors.  For a 2-3-regular bipartite
    input the result is a 3-regular multigraph (parallel edges may appear,
    self-loops cannot: the input is simple and bipartite).
    """
    partition = graph.bipartition()
    if partition is None:
        raise ValueError("merging requires a bipartite graph")
    degree_two = {node for node in graph.nodes if graph.degree(node) == 2}
    merged = Multigraph()
    for node in graph.nodes:
        if node not in degree_two:
            merged.add_node(node)
    for node in degree_two:
        neighbors = sorted(graph.neighbors(node), key=repr)
        if len(neighbors) != 2:
            raise ValueError("node %r does not have degree 2" % (node,))
        left, right = neighbors
        if left in degree_two or right in degree_two:
            raise ValueError(
                "degree-2 nodes must form an independent set (2-3-regular "
                "bipartite input expected)"
            )
        merged.add_edge(left, right, edge_id=("merged", node))
    return merged


def subdivide_edges(multigraph: Multigraph) -> Graph:
    """The Prop. A.8 transformation: add a node in the middle of each edge.

    For a 3-regular multigraph ``G`` the output ``G'`` is a simple
    2-3-regular bipartite graph with
    ``#Avoidance(G') = 2^{|E| - |V|} * #Avoidance(G)``.
    """
    subdivided = Graph()
    for node in multigraph.nodes:
        subdivided.add_node(node)
    for edge_id, u, v in multigraph.iter_edges():
        midpoint = ("mid", edge_id)
        subdivided.add_edge(u, midpoint)
        subdivided.add_edge(midpoint, v)
    return subdivided


def k_stretch(graph: Graph, k: int) -> Graph:
    """The ``k``-stretch ``s_k(G)`` (Definition B.11): replace every edge by
    a path of length ``k``.

    ``s_1(G) = G``; for even ``k`` the stretch is bipartite regardless of
    ``G``, which is the final step of the Prop. B.5 hardness transfer.
    """
    if k < 1:
        raise ValueError("stretch factor must be >= 1")
    stretched = Graph()
    for node in graph.nodes:
        stretched.add_node(node)
    for u, v in graph.edges:
        previous = u
        for step in range(1, k):
            waypoint = ("stretch", (u, v), step)
            stretched.add_edge(previous, waypoint)
            previous = waypoint
        stretched.add_edge(previous, v)
    return stretched
