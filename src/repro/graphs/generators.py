"""Deterministic and seeded-random graph generators for tests and benches."""

from __future__ import annotations

import random

from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    """Path on nodes ``0..n-1``."""
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """Cycle on nodes ``0..n-1`` (requires ``n >= 3``)."""
    if n < 3:
        raise ValueError("a simple cycle needs at least 3 nodes")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """``K_n``."""
    graph = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def star_graph(n: int) -> Graph:
    """Star with center ``0`` and leaves ``1..n``."""
    graph = Graph(nodes=range(n + 1))
    for leaf in range(1, n + 1):
        graph.add_edge(0, leaf)
    return graph


def complete_bipartite_graph(m: int, n: int) -> Graph:
    """``K_{m,n}`` with parts ``('a', i)`` and ``('b', j)``."""
    graph = Graph()
    left = [("a", i) for i in range(m)]
    right = [("b", j) for j in range(n)]
    for node in left + right:
        graph.add_node(node)
    for u in left:
        for v in right:
            graph.add_edge(u, v)
    return graph


def random_graph(n: int, edge_probability: float, seed: int) -> Graph:
    """Erdos-Renyi ``G(n, p)`` with a deterministic seed."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_probability:
                graph.add_edge(i, j)
    return graph


def random_bipartite_graph(
    m: int, n: int, edge_probability: float, seed: int
) -> Graph:
    """Random bipartite graph over parts ``('a', i)`` / ``('b', j)``."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must lie in [0, 1]")
    rng = random.Random(seed)
    graph = Graph()
    left = [("a", i) for i in range(m)]
    right = [("b", j) for j in range(n)]
    for node in left + right:
        graph.add_node(node)
    for u in left:
        for v in right:
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph
