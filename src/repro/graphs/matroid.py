"""Bicircular matroids and Tutte-polynomial evaluation (Appendix B.5).

The hardness of ``#PF`` on bipartite graphs (Prop. B.5) rests on three facts
which this module makes executable and testable:

* ``B(G)`` — ground set ``E``, independent sets = pseudoforests — is a
  matroid (Definition B.9; axioms property-tested in the suite);
* ``T(B(G); 2, 1)`` counts the independent sets, i.e. equals ``#PF(G)``
  (Observation B.8);
* the k-stretch identity
  ``T(B(s_k(G)); 2, 1) = (2^k - 1)^{|E| - rk(E)} * T(B(G); 2^k, 1)``
  transfers hardness to bipartite graphs (even ``k`` makes ``s_k(G)``
  bipartite).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import Iterable

from repro.graphs.graph import Edge, Graph
from repro.graphs.pseudoforest import bicircular_rank, is_pseudoforest_edge_set


class BicircularMatroid:
    """The bicircular matroid ``B(G)`` of a simple graph ``G``."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._ground: tuple[Edge, ...] = tuple(graph.edges)

    @property
    def ground_set(self) -> tuple[Edge, ...]:
        return self._ground

    def is_independent(self, subset: Iterable[Edge]) -> bool:
        """Independent iff the edge subset spans a pseudoforest."""
        return is_pseudoforest_edge_set(subset)

    def rank(self, subset: Iterable[Edge]) -> int:
        """Matroid rank: largest independent subset size within ``subset``."""
        return bicircular_rank(self._graph, subset)

    @property
    def full_rank(self) -> int:
        return self.rank(self._ground)

    def count_independent_sets(self) -> int:
        """Exhaustive count of independent sets (== ``#PF`` of the graph)."""
        count = 0
        for size in range(len(self._ground) + 1):
            for subset in combinations(self._ground, size):
                if self.is_independent(subset):
                    count += 1
        return count

    def tutte_polynomial(
        self, x: int | Fraction, y: int | Fraction
    ) -> Fraction:
        """Evaluate ``T(B(G); x, y)`` by the rank-sum definition (Def. B.7):

        ``T(M; x, y) = sum_{A subset E} (x-1)^{rk(E)-rk(A)} (y-1)^{|A|-rk(A)}``

        Exact over rationals; exponential in ``|E|`` by design (evaluation at
        generic points is #P-hard, which is the point of Appendix B.5).
        """
        x = Fraction(x)
        y = Fraction(y)
        full_rank = self.full_rank
        total = Fraction(0)
        for size in range(len(self._ground) + 1):
            for subset in combinations(self._ground, size):
                rank = self.rank(subset)
                corank = full_rank - rank
                nullity = size - rank
                term = Fraction(1)
                if corank:
                    term *= (x - 1) ** corank
                if nullity:
                    term *= (y - 1) ** nullity
                # 0^0 = 1 convention is automatic: skipped factors are 1.
                total += term
        return total


def independence_axioms_hold(
    matroid: BicircularMatroid, max_check_size: int | None = None
) -> bool:
    """Check the three independence axioms of Definition B.6 exhaustively.

    Intended for small graphs in tests; ``max_check_size`` caps the subset
    size examined.
    """
    ground = matroid.ground_set
    limit = len(ground) if max_check_size is None else max_check_size
    independents: list[frozenset[Edge]] = []
    for size in range(limit + 1):
        for subset in combinations(ground, size):
            if matroid.is_independent(subset):
                independents.append(frozenset(subset))
    independent_family = set(independents)

    # Non-emptiness: the empty set is always independent.
    if frozenset() not in independent_family:
        return False
    # Heritage: subsets of independent sets are independent.
    for independent in independent_family:
        for element in independent:
            if independent - {element} not in independent_family:
                return False
    # Exchange: |A| > |B| implies some x in A-B with B + x independent.
    for bigger in independent_family:
        for smaller in independent_family:
            if len(bigger) <= len(smaller):
                continue
            if not any(
                smaller | {x} in independent_family for x in bigger - smaller
            ):
                return False
    return True
