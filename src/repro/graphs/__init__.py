"""Graph substrate for the paper's hardness reductions.

Every #P-hardness proof in the paper departs from a counting problem on
graphs or multigraphs: 3-colorings (Prop. 3.4), independent sets
(Props. 3.8/4.5), independent sets in bipartite graphs (Prop. 3.11), vertex
covers (Prop. 4.2), avoiding assignments of multigraphs (Prop. 3.5 via
App. A.2), induced pseudoforests (Prop. 4.5(b) via App. B.4-B.5) and
Hamiltonian induced subgraphs (Thm. 6.4).  This package implements those
source problems from scratch — exact brute-force counters plus the structural
machinery the proofs rely on (bipartite matching, pseudoforest orientations,
bicircular matroids, k-stretches).
"""

from repro.graphs.graph import Graph, Multigraph
from repro.graphs.counting import (
    count_colorings,
    count_independent_pairs_by_size,
    count_independent_sets,
    count_vertex_covers,
    is_independent_set,
    is_vertex_cover,
)
from repro.graphs.matching import hopcroft_karp, maximum_matching_size
from repro.graphs.pseudoforest import (
    bicircular_rank,
    count_induced_pseudoforests,
    has_outdegree_one_orientation,
    is_pseudoforest_edge_set,
)
from repro.graphs.matroid import BicircularMatroid
from repro.graphs.avoidance import (
    count_assignments,
    count_avoiding_assignments,
    merge_degree_two_nodes,
    subdivide_edges,
)
from repro.graphs.hamilton import (
    count_hamiltonian_induced_subgraphs,
    is_hamiltonian,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_bipartite_graph,
    random_graph,
    star_graph,
)

__all__ = [
    "Graph",
    "Multigraph",
    "count_colorings",
    "count_independent_pairs_by_size",
    "count_independent_sets",
    "count_vertex_covers",
    "is_independent_set",
    "is_vertex_cover",
    "hopcroft_karp",
    "maximum_matching_size",
    "bicircular_rank",
    "count_induced_pseudoforests",
    "has_outdegree_one_orientation",
    "is_pseudoforest_edge_set",
    "BicircularMatroid",
    "count_assignments",
    "count_avoiding_assignments",
    "merge_degree_two_nodes",
    "subdivide_edges",
    "count_hamiltonian_induced_subgraphs",
    "is_hamiltonian",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "random_bipartite_graph",
    "random_graph",
    "star_graph",
]
