"""Hamiltonicity and the ``#HamSubgraphs`` problem (Theorem 6.4).

``#HamSubgraphs`` — given ``(G, k)``, count the ``k``-node induced subgraphs
``G[S]`` that are Hamiltonian — is SpanP-complete (Prop. D.5, citing Köbler,
Schöning and Torán) and is the source of the SpanP-hardness of ``#Valu(q)``
for a fixed query with NP model checking.  We implement the exact counter:
Held-Karp bitmask dynamic programming for the Hamiltonian-cycle test inside
a subset enumeration.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.graphs.graph import Graph, Node


def is_hamiltonian(graph: Graph) -> bool:
    """True when ``graph`` contains a cycle visiting every node exactly once.

    Conventions follow the paper's graph model: the one-node graph is not
    Hamiltonian (no self-loops) and neither is the two-node graph (no
    parallel edges); the empty graph is vacuously not Hamiltonian.
    Held-Karp DP, ``O(2^n * n^2)``.
    """
    nodes = graph.nodes
    n = len(nodes)
    if n < 3:
        return False
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = [0] * n
    for u, v in graph.edges:
        adjacency[index[u]] |= 1 << index[v]
        adjacency[index[v]] |= 1 << index[u]
    if any(mask == 0 for mask in adjacency):
        return False

    # reachable[mask] = bitmask of endpoints x such that some simple path
    # starts at node 0, visits exactly `mask`, and ends at x.
    start_bit = 1
    size = 1 << n
    reachable = [0] * size
    reachable[start_bit] = start_bit
    full = size - 1
    for mask in range(size):
        endpoints = reachable[mask]
        if not endpoints or not mask & start_bit:
            continue
        remaining = full & ~mask
        current = endpoints
        while current:
            low = current & -current
            endpoint = low.bit_length() - 1
            current ^= low
            extensions = adjacency[endpoint] & remaining
            while extensions:
                next_low = extensions & -extensions
                reachable[mask | next_low] |= next_low
                extensions ^= next_low
    final_endpoints = reachable[full]
    return bool(final_endpoints & adjacency[0])


def count_hamiltonian_induced_subgraphs(graph: Graph, k: int) -> int:
    """``#HamSubgraphs(G, k)``: induced ``k``-subsets whose subgraph is
    Hamiltonian (Definition D.4)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    nodes = graph.nodes
    if k > len(nodes):
        return 0
    count = 0
    for subset in combinations(nodes, k):
        if is_hamiltonian(graph.induced_subgraph(subset)):
            count += 1
    return count


def hamiltonian_subsets(graph: Graph, k: int) -> list[frozenset[Node]]:
    """The witnesses counted by :func:`count_hamiltonian_induced_subgraphs`."""
    found: list[frozenset[Node]] = []
    for subset in combinations(graph.nodes, k):
        if is_hamiltonian(graph.induced_subgraph(subset)):
            found.append(frozenset(subset))
    return found


def subsets_extendable_check(graph: Graph, subsets: Iterable[frozenset[Node]]) -> bool:
    """Sanity helper: each listed subset really induces a Hamiltonian graph."""
    return all(is_hamiltonian(graph.induced_subgraph(s)) for s in subsets)
