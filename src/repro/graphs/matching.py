"""Maximum bipartite matching (Hopcroft-Karp).

Lemma B.2 of the paper decides whether a set of ground facts is a completion
of a Codd table by computing a maximum-cardinality matching in the bipartite
graph connecting incomplete facts to compatible ground facts; the paper cites
Edmonds [20], and for the bipartite case Hopcroft-Karp is the standard
polynomial algorithm.  The same primitive decides the out-degree-one
orientation criterion for pseudoforests (Lemma B.4).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping, Sequence

LeftNode = Hashable
RightNode = Hashable

_INFINITY = float("inf")


def hopcroft_karp(
    left_nodes: Sequence[LeftNode],
    adjacency: Mapping[LeftNode, Sequence[RightNode]],
) -> dict[LeftNode, RightNode]:
    """Maximum-cardinality matching of a bipartite graph.

    ``adjacency`` maps each left node to the right nodes it may match.
    Returns a dict ``left -> right`` describing one maximum matching.
    Runs in ``O(E * sqrt(V))``.
    """
    match_left: dict[LeftNode, RightNode | None] = {u: None for u in left_nodes}
    match_right: dict[RightNode, LeftNode | None] = {}
    for u in left_nodes:
        for v in adjacency.get(u, ()):  # register right nodes
            match_right.setdefault(v, None)

    distance: dict[LeftNode, float] = {}

    def bfs() -> bool:
        queue: deque[LeftNode] = deque()
        for u in left_nodes:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = _INFINITY
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                partner = match_right[v]
                if partner is None:
                    found_augmenting = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[u] + 1
                    queue.append(partner)
        return found_augmenting

    def dfs(u: LeftNode) -> bool:
        for v in adjacency.get(u, ()):
            partner = match_right[v]
            if partner is None or (
                distance[partner] == distance[u] + 1 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INFINITY
        return False

    while bfs():
        for u in left_nodes:
            if match_left[u] is None:
                dfs(u)

    return {u: v for u, v in match_left.items() if v is not None}


def maximum_matching_size(
    left_nodes: Sequence[LeftNode],
    adjacency: Mapping[LeftNode, Sequence[RightNode]],
) -> int:
    """Size of a maximum matching (the quantity ``m`` in Lemma B.2)."""
    return len(hopcroft_karp(left_nodes, adjacency))


def has_perfect_left_matching(
    left_nodes: Sequence[LeftNode],
    adjacency: Mapping[LeftNode, Sequence[RightNode]],
) -> bool:
    """True when every left node can be matched simultaneously."""
    return maximum_matching_size(left_nodes, adjacency) == len(left_nodes)
