"""Random and scaling instance generators."""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.query import Atom, BCQ
from repro.db.fact import Fact
from repro.db.incomplete import IncompleteDatabase
from repro.db.terms import Null


def random_incomplete_db(
    schema: Mapping[str, int],
    seed: int,
    num_nulls: int = 3,
    facts_per_relation: tuple[int, int] = (1, 3),
    domain_size: int = 3,
    uniform: bool = True,
    codd: bool = False,
    null_probability: float = 0.5,
    extra_constants: int = 1,
) -> IncompleteDatabase:
    """A random incomplete database over ``schema`` (relation -> arity).

    ``codd=True`` uses each null at most once (fresh nulls are drawn as
    needed); otherwise nulls are shared across positions with probability
    ``null_probability`` per position.  Constants are drawn from the
    domain plus ``extra_constants`` out-of-domain values.
    """
    rng = random.Random(seed)
    domain = ["v%d" % i for i in range(domain_size)]
    constants = domain + ["out%d" % i for i in range(extra_constants)]
    shared_nulls = [Null("n%d" % i) for i in range(max(num_nulls, 1))]
    fresh_counter = [0]

    def next_null() -> Null:
        if codd:
            fresh_counter[0] += 1
            return Null("c%d" % fresh_counter[0])
        return rng.choice(shared_nulls)

    facts = []
    used_nulls: set[Null] = set()
    for relation in sorted(schema):
        arity = schema[relation]
        for _ in range(rng.randint(*facts_per_relation)):
            terms = []
            for _ in range(arity):
                if rng.random() < null_probability:
                    null = next_null()
                    used_nulls.add(null)
                    terms.append(null)
                else:
                    terms.append(rng.choice(constants))
            facts.append(Fact(relation, terms))

    if uniform:
        return IncompleteDatabase.uniform(facts, domain)
    non_uniform = {
        null: rng.sample(domain, rng.randint(1, len(domain)))
        for null in used_nulls
    }
    return IncompleteDatabase(facts, dom=non_uniform)


def scaling_single_occurrence_instance(
    size: int, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Theorem 3.6 family: ``R(x,y) ∧ S(z)``, ``size`` facts/nulls each,
    non-uniform domains."""
    rng = random.Random(seed)
    facts = []
    dom: dict[Null, list[str]] = {}
    pool = ["v%d" % i for i in range(max(4, size))]
    for i in range(size):
        r_null = Null(("r", i))
        s_null = Null(("s", i))
        dom[r_null] = rng.sample(pool, min(3, len(pool)))
        dom[s_null] = rng.sample(pool, min(2, len(pool)))
        facts.append(Fact("R", [r_null, rng.choice(pool)]))
        facts.append(Fact("S", [s_null]))
    query = BCQ([Atom("R", ["x", "y"]), Atom("S", ["z"])])
    return IncompleteDatabase(facts, dom=dom), query


def scaling_codd_instance(
    size: int, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Theorem 3.7 family: ``R(x,x) ∧ S(y,z)`` over a Codd table with
    ``size`` facts per relation, non-uniform domains."""
    rng = random.Random(seed)
    facts = []
    dom: dict[Null, list[str]] = {}
    pool = ["v%d" % i for i in range(max(4, size // 2 + 2))]
    counter = [0]

    def fresh() -> Null:
        counter[0] += 1
        null = Null(counter[0])
        dom[null] = rng.sample(pool, rng.randint(1, min(3, len(pool))))
        return null

    for _ in range(size):
        facts.append(Fact("R", [fresh(), fresh()]))
        facts.append(Fact("S", [fresh(), rng.choice(pool)]))
    query = BCQ([Atom("R", ["x", "x"]), Atom("S", ["y", "z"])])
    return IncompleteDatabase(facts, dom=dom), query


def scaling_uniform_val_instance(
    size: int, domain_size: int = 4, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Theorem 3.9 family: ``R(x) ∧ S(x)`` over a naive uniform table with
    ``size`` nulls per relation (some shared between R and S)."""
    rng = random.Random(seed)
    domain = ["v%d" % i for i in range(domain_size)]
    facts = []
    for i in range(size):
        facts.append(Fact("R", [Null(("r", i))]))
        facts.append(Fact("S", [Null(("s", i))]))
        if i % 3 == 0:
            shared = Null(("shared", i))
            facts.append(Fact("R", [shared]))
            facts.append(Fact("S", [shared]))
    facts.append(Fact("R", [rng.choice(domain)]))
    query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
    return IncompleteDatabase.uniform(facts, domain), query


def scaling_hard_val_instance(
    size: int, num_colors: int = 3, chord_probability: float = 0.0,
    seed: int = 0,
) -> tuple[IncompleteDatabase, BCQ]:
    """Hard-cell ``#Val`` family (Prop. 3.4 shape): ``R(x,x)`` over the
    coloring database of a ``size``-cycle.

    ``#Val`` here counts improperly-colored assignments — #P-hard in
    general, and brute force costs ``num_colors^size``.  The cycle keeps
    the lineage treewidth tiny, so the ``lineage`` backend stays
    polynomial; ``chord_probability`` adds random chords to thicken the
    instance (seeded, reproducible).
    """
    rng = random.Random(seed)
    node_null = {v: Null(("node", v)) for v in range(size)}
    edges = [(v, (v + 1) % size) for v in range(size)]
    for u in range(size):
        for v in range(u + 2, size):
            if (u, v) not in edges and rng.random() < chord_probability:
                edges.append((u, v))
    facts = []
    for u, v in edges:
        facts.append(Fact("R", [node_null[u], node_null[v]]))
        facts.append(Fact("R", [node_null[v], node_null[u]]))
    query = BCQ([Atom("R", ["x", "x"])])
    domain = ["c%d" % i for i in range(num_colors)]
    return IncompleteDatabase.uniform(facts, domain), query


def scaling_grid_val_instance(
    rows: int, cols: int, num_colors: int = 2, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Low-treewidth hard-cell ``#Val`` family: ``R(x,x)`` over the
    coloring database of a ``rows x cols`` grid graph.

    The grid's treewidth is ``min(rows, cols)``, so the lineage CNF stays
    width-bounded no matter how long the grid grows — *wide but
    width-bounded*, the shape where the tree-decomposition DP is linear
    while search-based counting keeps paying for the grid's cycles.
    Brute force costs ``num_colors^(rows*cols)``.
    """
    node_null = {
        (r, c): Null(("grid", r, c))
        for r in range(rows)
        for c in range(cols)
    }
    facts = []
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    facts.append(
                        Fact("R", [node_null[(r, c)], node_null[(rr, cc)]])
                    )
                    facts.append(
                        Fact("R", [node_null[(rr, cc)], node_null[(r, c)]])
                    )
    query = BCQ([Atom("R", ["x", "x"])])
    domain = ["c%d" % i for i in range(num_colors)]
    return IncompleteDatabase.uniform(facts, domain), query


def scaling_long_cycle_val_instance(
    length: int, band: int = 2, num_colors: int = 2, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Low-treewidth hard-cell ``#Val`` family: ``R(x,x)`` over the
    coloring database of a circulant graph — a ``length``-cycle where
    each vertex is also joined to its ``band`` nearest successors.

    Treewidth is about ``2 * band`` regardless of ``length``: arbitrarily
    *long* instances of fixed width.  ``band=1`` is a plain cycle; larger
    bands thicken every bag without ever letting the width grow with the
    instance, which is exactly the regime the dpdb backend is built for.
    """
    node_null = {v: Null(("ring", v)) for v in range(length)}
    facts = []
    seen = set()
    for v in range(length):
        for step in range(1, band + 1):
            u, w = v, (v + step) % length
            edge = (min(u, w), max(u, w))
            if u == w or edge in seen:
                continue
            seen.add(edge)
            facts.append(Fact("R", [node_null[u], node_null[w]]))
            facts.append(Fact("R", [node_null[w], node_null[u]]))
    query = BCQ([Atom("R", ["x", "x"])])
    domain = ["c%d" % i for i in range(num_colors)]
    return IncompleteDatabase.uniform(facts, domain), query


def scaling_block_comp_instance(
    num_blocks: int, block_size: int = 3, overlap: int = 2, seed: int = 0
) -> tuple[IncompleteDatabase, None]:
    """Low-width ``#Comp`` family: independent overlap blocks.

    ``num_blocks`` disjoint groups of ``block_size`` unary nulls whose
    domains overlap *within* the block only.  The projection-constrained
    elimination width is bounded by the block size (each block is its own
    primal-graph component), so projected dpdb counting stays cheap for
    arbitrarily many blocks — unlike chain- or cycle-shaped overlap,
    where eliminating every choice variable first provably accumulates
    the projected pendants and the constrained width grows linearly.
    Returned with ``query=None``: the count-all-completions form.
    """
    rng = random.Random(seed)
    facts = []
    dom: dict[Null, list[str]] = {}
    for block in range(num_blocks):
        values = [
            "b%d_v%d" % (block, i) for i in range(block_size + overlap - 1)
        ]
        for i in range(block_size):
            null = Null(("block", block, i))
            dom[null] = values[i : i + overlap]
            facts.append(Fact("R", [null]))
        if rng.random() < 0.5:  # a ground fact collapsing some choices
            facts.append(Fact("R", [values[0]]))
    return IncompleteDatabase(facts, dom=dom), None


def scaling_hard_comp_instance(
    size: int, overlap: int = 2, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Hard-cell ``#Comp`` family (Prop. 4.2 shape): completions of a
    non-uniform *unary* table whose null domains overlap along a path.

    Facts ``R(⊥_i)`` with ``dom(⊥_i) = {v_i, ..., v_{i+overlap-1}}``:
    distinct valuations collapse heavily, so counting distinct completions
    is the hard part (brute force enumerates ``overlap^size`` valuations).
    The path-shaped overlap keeps the projected counting decomposable.
    Returned with the ``R(x) ∧ S(x)`` intersection query (plus ground
    ``S`` facts over a random half of the values) for the
    query-constrained variant; pass ``query=None`` downstream to count
    all completions.
    """
    rng = random.Random(seed)
    facts = []
    dom: dict[Null, list[str]] = {}
    for i in range(size):
        null = Null(("u", i))
        dom[null] = ["v%d" % (i + j) for j in range(overlap)]
        facts.append(Fact("R", [null]))
    values = sorted({value for choices in dom.values() for value in choices})
    for value in rng.sample(values, max(1, len(values) // 2)):
        facts.append(Fact("S", [value]))
    query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
    return IncompleteDatabase(facts, dom=dom), query


def scaling_uniform_unary_comp_instance(
    num_nulls: int, domain_size: int = 6, seed: int = 0
) -> tuple[IncompleteDatabase, BCQ]:
    """Theorem 4.6 family: completions of a uniform table over unary
    ``R, S`` with ``num_nulls`` nulls split across the relations."""
    rng = random.Random(seed)
    domain = ["v%d" % i for i in range(domain_size)]
    facts = [Fact("R", [domain[0]])]
    for i in range(num_nulls):
        null = Null(("u", i))
        target = "R" if i % 2 == 0 else "S"
        facts.append(Fact(target, [null]))
        if i % 4 == 0:  # some nulls occur in both relations (naive table)
            facts.append(Fact("S", [null]))
    query = BCQ([Atom("R", ["x"]), Atom("S", ["x"])])
    return IncompleteDatabase.uniform(facts, domain), query
