"""Instance generators for tests and the benchmark harness.

Each Table-1 cell gets a parameterized instance family: the tractable side
scales the data (domain size, null count) for polynomial-fit measurements,
and the hard side produces the reduction databases whose brute-force
counting exhibits the predicted exponential growth.
"""

from repro.workloads.generators import (
    random_incomplete_db,
    scaling_codd_instance,
    scaling_single_occurrence_instance,
    scaling_uniform_unary_comp_instance,
    scaling_uniform_val_instance,
)

__all__ = [
    "random_incomplete_db",
    "scaling_codd_instance",
    "scaling_single_occurrence_instance",
    "scaling_uniform_unary_comp_instance",
    "scaling_uniform_val_instance",
]
